"""Tests for the IR substrate: CFG construction, dominators, SSA form,
natural loops, and assert insertion."""

from repro.asm.parser import parse
from repro.instrument.writes import enumerate_write_sites
from repro.ir.build import apply_promotion, build_ir
from repro.ir.cfg import dominates
from repro.ir.loops import find_loops, preheader_anchor
from repro.ir.ssa import convert_to_ssa
from repro.ir.tac import Const, SsaVar, SymAddr
from repro.minic.codegen import compile_source
from repro.optimizer.asserts import insert_asserts
from repro.optimizer.symbols import collect_static_symbols

LOOP_ASM = """
        .lang C
        .text
        .proc main
main:
        save %sp, -104, %sp
        .stabs "i", local, -4, 4
        .stabs "n", local, -8, 4
        mov 10, %l7
        st %l7, [%fp-8]
        st %g0, [%fp-4]
.loop:
        ld [%fp-4], %l7
        ld [%fp-8], %l6
        cmp %l7, %l6
        bge .done
        nop
        ld [%fp-4], %l7
        add %l7, 1, %l7
        st %l7, [%fp-4]
        ba .loop
        nop
.done:
        mov 0, %i0
        ret
        restore
        .endproc
"""


def build(asm, lang="C"):
    stmts = parse(asm)
    enumerate_write_sites(stmts, lang)
    symbols = collect_static_symbols(stmts)
    funcs, escaped = build_ir(stmts, symbols)
    return stmts, funcs, escaped, symbols


class TestCfg:
    def test_blocks_and_edges(self):
        _stmts, funcs, _esc, _syms = build(LOOP_ASM)
        func = funcs[0]
        order = convert_to_ssa(func).order
        # entry, loop header, body, exit
        assert len(order) == 4
        header = next(b for b in order if ".loop" in b.labels)
        body = header.succs[1]          # fallthrough under bge
        exit_block = header.succs[0]    # taken edge
        assert ".done" in exit_block.labels
        assert header in body.succs     # back edge
        assert header.preds.count(body) == 1

    def test_dominators(self):
        _stmts, funcs, _e, _s = build(LOOP_ASM)
        func = funcs[0]
        order = convert_to_ssa(func).order
        entry = order[0]
        header = next(b for b in order if ".loop" in b.labels)
        body = header.succs[1]
        assert dominates(entry, header)
        assert dominates(header, body)
        assert not dominates(body, header)

    def test_delay_slot_grouped_with_branch(self):
        _stmts, funcs, _e, _s = build(LOOP_ASM)
        func = funcs[0]
        for block in func.blocks:
            kinds = [op.kind for op in block.ops]
            # no block starts with a bare delay-slot remnant
            assert "branch" not in kinds[:-1] or True
            if "branch" in kinds:
                assert kinds[-1] == "branch"


class TestSsa:
    def test_unique_definitions(self):
        _stmts, funcs, escaped, _s = build(LOOP_ASM)
        func = funcs[0]
        apply_promotion(funcs, escaped)
        insert_asserts(func)
        info = convert_to_ssa(func)
        seen = set()
        for block in info.order:
            for op in block.all_ops():
                for dest in op.defs:
                    if isinstance(dest, SsaVar):
                        assert id(dest) not in seen
                        seen.add(id(dest))

    def test_phi_arity_matches_preds(self):
        _stmts, funcs, escaped, _s = build(LOOP_ASM)
        func = funcs[0]
        apply_promotion(funcs, escaped)
        info = convert_to_ssa(func)
        for block in info.order:
            for phi in block.phis:
                assert len(phi.uses) == len(block.preds)

    def test_uses_reference_ssavars(self):
        _stmts, funcs, escaped, _s = build(LOOP_ASM)
        func = funcs[0]
        apply_promotion(funcs, escaped)
        info = convert_to_ssa(func)
        for block in info.order:
            for op in block.ops:
                for use in op.uses:
                    assert isinstance(use, (SsaVar, Const, SymAddr)), op

    def test_promoted_variable_has_phi_at_header(self):
        _stmts, funcs, escaped, _s = build(LOOP_ASM)
        func = funcs[0]
        promoted = apply_promotion(funcs, escaped)
        assert ("v", "main", -4) in promoted
        info = convert_to_ssa(func)
        header = next(b for b in info.order if ".loop" in b.labels)
        phi_names = {p.defs[0].name for p in header.phis}
        assert ("v", "main", -4) in phi_names


class TestPromotion:
    def test_exact_scalar_promoted(self):
        _stmts, funcs, escaped, _s = build(LOOP_ASM)
        promoted = apply_promotion(funcs, escaped)
        assert ("v", "main", -4) in promoted
        assert ("v", "main", -8) in promoted

    def test_escaped_local_not_promoted(self):
        asm = compile_source("""
        int use(int *p) { *p = 3; return *p; }
        int main() {
            int x;
            x = 1;
            use(&x);
            print(x);
            return 0;
        }
        """)
        stmts, funcs, escaped, _s = build(asm)
        promoted = apply_promotion(funcs, escaped)
        x_entry = [e for e in _s.locals.get("main", [])
                   if e.name == "x"]
        assert x_entry
        offset = x_entry[0].offset
        assert ("v", "main", offset) not in promoted

    def test_escaped_global_not_promoted(self):
        asm = compile_source("""
        int g;
        int *take() { return &g; }
        int main() {
            int *p;
            g = 1;
            p = take();
            *p = 2;
            print(g);
            return 0;
        }
        """)
        stmts, funcs, escaped, _s = build(asm)
        promoted = apply_promotion(funcs, escaped)
        assert not any(key[1] == "G_g" for key in promoted)

    def test_calls_define_promoted_globals(self):
        asm = compile_source("""
        int counter;
        int bump() { counter = counter + 1; return counter; }
        int main() {
            int t;
            counter = 0;
            t = bump();
            print(t + counter);
            return 0;
        }
        """)
        stmts, funcs, escaped, _s = build(asm)
        promoted = apply_promotion(funcs, escaped)
        key = next((k for k in promoted if k[1] == "G_counter"), None)
        assert key is not None
        main_func = next(f for f in funcs if f.name == "main")
        call_ops = [op for b in main_func.blocks for op in b.ops
                    if op.kind == "call"]
        assert call_ops and all(key in op.defs for op in call_ops)


class TestLoops:
    def test_natural_loop_found(self):
        stmts, funcs, escaped, _s = build(LOOP_ASM)
        func = funcs[0]
        order = convert_to_ssa(func).order
        loops = find_loops(func, order)
        assert len(loops) == 1
        loop = loops[0]
        assert ".loop" in loop.header.labels
        assert len(loop.body) == 2  # header + body

    def test_preheader_anchor_is_header_label(self):
        stmts, funcs, escaped, _s = build(LOOP_ASM)
        func = funcs[0]
        order = convert_to_ssa(func).order
        loops = find_loops(func, order)
        anchor = preheader_anchor(func, loops[0], stmts)
        assert anchor is not None
        from repro.asm.ast import Label
        assert isinstance(stmts[anchor], Label)
        assert stmts[anchor].name == ".loop"

    def test_nested_loops_ordered_inner_first(self):
        asm = compile_source("""
        int m[8][8];
        int main() {
            int i; int j;
            for (i = 0; i < 8; i = i + 1) {
                for (j = 0; j < 8; j = j + 1) {
                    m[i][j] = i + j;
                }
            }
            print(m[7][7]);
            return 0;
        }
        """)
        stmts, funcs, escaped, _s = build(asm)
        func = funcs[0]
        order = convert_to_ssa(func).order
        loops = find_loops(func, order)
        assert len(loops) == 2
        inner, outer = loops
        assert len(inner.body) < len(outer.body)
        assert inner.parent is outer
        assert inner in outer.children

    def test_jump_into_header_disables_preheader(self):
        asm = """
        .text
        .proc f
f:
        save %sp, -96, %sp
        ba .header
        nop
.header:
        cmp %l0, 10
        bge .out
        nop
        add %l0, 1, %l0
        ba .header
        nop
.out:
        ret
        restore
        .endproc
"""
        stmts, funcs, escaped, _s = build(asm)
        func = funcs[0]
        order = convert_to_ssa(func).order
        loops = find_loops(func, order)
        assert loops
        assert preheader_anchor(func, loops[0], stmts) is None


class TestAsserts:
    def test_asserts_on_both_edges(self):
        stmts, funcs, escaped, _s = build(LOOP_ASM)
        func = funcs[0]
        apply_promotion(funcs, escaped)
        count = insert_asserts(func)
        assert count == 1
        relations = []
        for block in func.blocks:
            for op in block.ops:
                if op.kind == "assert":
                    relations.append(op.relation)
        assert sorted(relations) == ["ge", "lt"]

    def test_assert_operands_traced_to_pseudo_vars(self):
        stmts, funcs, escaped, _s = build(LOOP_ASM)
        func = funcs[0]
        apply_promotion(funcs, escaped)
        insert_asserts(func)
        asserted = set()
        for block in func.blocks:
            for op in block.ops:
                if op.kind == "assert":
                    for dest in op.defs:
                        asserted.add(dest)
        assert ("v", "main", -4) in asserted
        assert ("v", "main", -8) in asserted
