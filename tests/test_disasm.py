"""Tests for the disassembler."""

from repro.debugger import Debugger
from repro.machine.disasm import disassemble, disassemble_function

PROGRAM = """
int g;
int bump() { g = g + 1; return g; }
int main() { bump(); print(g); return 0; }
"""


def make_debugger(**kwargs):
    kwargs.setdefault("optimize", None)
    kwargs.setdefault("strategy", "Bitmap")
    return Debugger.for_source(PROGRAM, **kwargs)


class TestDisassembler:
    def test_function_listing_has_labels_and_addresses(self):
        debugger = make_debugger()
        text = debugger.disassemble("bump")
        assert "bump:" in text
        assert "0x000" in text
        assert "save %sp" in text

    def test_check_code_tagged(self):
        debugger = make_debugger()
        text = debugger.disassemble("bump")
        assert "! check" in text
        assert "! site" in text

    def test_pc_marker(self):
        debugger = make_debugger()
        # before the first run, pc sits at the start of code space — the
        # first function in the program
        first_func = debugger.session.program.functions[0].name
        text = debugger.disassemble(first_func)
        assert text.splitlines()[1].startswith("=> ")
        assert text.count("=>") == 1

    def test_active_patch_visible(self):
        debugger = Debugger.for_source(PROGRAM, optimize="full")
        before = debugger.disassemble("bump")
        assert "st " in before
        debugger.mrs.pre_monitor("g")
        after = debugger.disassemble("bump")
        # the known write was replaced by a ba,a to its patch block
        assert "ba,a" in after
        assert "! patch" in after

    def test_raw_disassemble_bounds(self):
        debugger = make_debugger()
        code = debugger.cpu.code
        text = disassemble(code, code.base, 4)
        assert len(text.splitlines()) >= 4
        # beyond the end: stops quietly
        text = disassemble(code, code.limit - 4, 100)
        assert len([ln for ln in text.splitlines()
                    if ln.strip().startswith("0x") or "=>" in ln]) == 1

    def test_program_level_listing(self):
        debugger = make_debugger()
        text = disassemble_function(debugger.session.program,
                                    debugger.cpu.code, "main")
        assert "call" in text
