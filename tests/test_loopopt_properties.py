"""Property-based tests of loop optimization: randomized affine loops
must keep exact hit detection, and eliminated checks must actually be
eliminated when no region is monitored."""

from hypothesis import assume, given, settings, strategies as st

from helpers import oracle_hits
from repro.minic.codegen import compile_source
from repro.optimizer.pipeline import build_plan
from repro.session import DebugSession, run_uninstrumented

ARRAY_WORDS = 96

_TEMPLATE = """
int a[%(words)d];
int main() {
    int i;
    for (i = %(lo)d; i %(cmp)s %(hi)d; i = i + %(stride)d) {
        a[%(offset)d + %(coef)d * i] = i;
    }
    print(a[%(probe)d]);
    return 0;
}
"""


def build_program(lo, hi, stride, coef, offset, increasing):
    if increasing:
        params = dict(lo=lo, hi=hi, cmp="<", stride=stride)
        indices = range(lo, hi, stride)
    else:
        params = dict(lo=hi - 1, hi=lo, cmp=">=", stride=-stride)
        indices = range(hi - 1, lo - 1, -stride)
    touched = [offset + coef * i for i in indices]
    if not touched:
        return None, None
    if min(touched) < 0 or max(touched) >= ARRAY_WORDS:
        return None, None
    params.update(words=ARRAY_WORDS, coef=coef, offset=offset,
                  probe=touched[0])
    return _TEMPLATE % params, touched


@settings(max_examples=25, deadline=None)
@given(lo=st.integers(0, 6), span=st.integers(1, 12),
       stride=st.integers(1, 3), coef=st.sampled_from([1, 2, 3, 4, 6]),
       offset=st.integers(0, 8), increasing=st.booleans(),
       region_word=st.integers(0, ARRAY_WORDS - 1),
       region_words=st.integers(1, 8))
def test_randomized_affine_loops_stay_sound(lo, span, stride, coef,
                                            offset, increasing,
                                            region_word, region_words):
    source, touched = build_program(lo, lo + span, stride, coef, offset,
                                    increasing)
    assume(source is not None)
    asm = compile_source(source)
    _code, base = run_uninstrumented(asm, record_writes=True)

    _stmts, plan = build_plan(asm, mode="full")
    session = DebugSession.from_asm(asm,
                                    strategy="BitmapInlineRegisters",
                                    plan=plan)
    entry = session.program.symtab.lookup("a")
    size = min(4 * region_words, entry.size - 4 * region_word)
    assume(size > 0)
    regions = [(entry.address + 4 * region_word, size)]
    session.mrs.enable()
    session.mrs.pre_monitor("a")
    for start, rsize in regions:
        session.mrs.create_region(start, rsize)
    assert session.run() == 0
    assert session.output == base.output

    expected = oracle_hits(base.cpu.write_trace, regions)
    got = [(addr, s) for addr, s, _r in session.mrs.hits]
    assert got == expected


@settings(max_examples=15, deadline=None)
@given(lo=st.integers(0, 4), span=st.integers(2, 10),
       stride=st.integers(1, 2), coef=st.sampled_from([1, 2, 4]),
       offset=st.integers(0, 6), increasing=st.booleans())
def test_eliminated_loops_run_check_free(lo, span, stride, coef, offset,
                                         increasing):
    """When the loop write was range-eliminated and nothing is
    monitored, zero check instructions execute inside the loop."""
    source, touched = build_program(lo, lo + span, stride, coef, offset,
                                    increasing)
    assume(source is not None)
    asm = compile_source(source)
    _stmts, plan = build_plan(asm, mode="full")
    assume("range" in plan.eliminate.values() or
           plan.summary()["range"] > 0)
    session = DebugSession.from_asm(asm,
                                    strategy="BitmapInlineRegisters",
                                    plan=plan)
    session.mrs.enable()
    assert session.run() == 0
    assert session.cpu.tag_counts.get("check", 0) == 0
    # one pre-header range check per loop entry
    assert session.cpu.tag_counts.get("phead_range", 0) == 1
