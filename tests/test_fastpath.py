"""Differential tests: block fast path vs the per-step interpreter.

The fast path (repro.machine.blocks) must be *bit-exact* with the slow
loop — same architectural state, same cost-model counters, same
recorded trace bytes, same monitor hit sequences — because replay
digests and Table 1 numbers are computed from them.  Every test here
runs the same program under both engines and compares everything
observable.  Several tests also assert ``block_runs > 0`` so a
regression that silently de-opts everything (trivially "equal") fails.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm.assembler import assemble
from repro.asm.loader import load_program, run_source
from repro.debugger import Debugger
from repro.isa.instructions import NopInsn
from repro.machine.cpu import SimulationLimit, Watchdog
from repro.minic.codegen import compile_source
from repro.replay import state_digest
from repro.workloads import WORKLOADS, workload_source

WORKLOAD_NAMES = ["023.eqntott", "030.matrix300", "008.espresso"]


def cpu_state(cpu):
    """Everything observable about a finished (or paused) CPU."""
    regs = cpu.regs
    return {
        "pc": cpu.pc, "npc": cpu.npc,
        "icc": (cpu.icc_n, cpu.icc_z, cpu.icc_v, cpu.icc_c),
        "digest": state_digest(cpu),
        "cycles": cpu.cycles, "instructions": cpu.instructions,
        "loads": cpu.loads, "stores": cpu.stores,
        "traps": cpu.traps_taken,
        "tag_counts": dict(cpu.tag_counts),
        "tag_cycles": dict(cpu.tag_cycles),
        "cache": (cpu.cache.hits, cpu.cache.misses),
        "globals": list(regs.globals),
        "memory": sorted(cpu.mem.words.items()),
        "depth": (cpu._window_depth, cpu.max_window_depth),
        "exit": (cpu.running, cpu.exit_code),
    }


def run_workload(name, scale, fast):
    spec = WORKLOADS[name]
    asm = compile_source(workload_source(name, scale), lang=spec.lang)
    loaded = load_program(assemble(asm), fast_path=fast)
    code = loaded.run()
    return code, loaded


class TestUninstrumentedParity:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workload_state_is_bit_exact(self, name):
        code_slow, slow = run_workload(name, 0.1, fast=False)
        code_fast, fast = run_workload(name, 0.1, fast=True)
        assert code_fast == code_slow
        assert fast.output == slow.output
        assert cpu_state(fast.cpu) == cpu_state(slow.cpu)
        # guard against a trivially-passing always-de-opt fast path
        stats = fast.cpu.fast_stats()
        assert stats["block_runs"] > 0
        assert stats["fast_retired"] > 0
        assert slow.cpu.fast_stats()["block_runs"] == 0

    def test_division_by_zero_faults_identically(self):
        body = "mov 1, %o0\n sdiv %o0, 0, %o0"
        states = []
        for fast in (False, True):
            source = ("\t.text\n\t.proc main\nmain:\n"
                      "\tsave %sp, -96, %sp\n\t" + body.replace("\n", "\n\t")
                      + "\n\tmov 0, %i0\n\tret\n\trestore\n\t.endproc\n")
            loaded = load_program(assemble(source), fast_path=fast)
            with pytest.raises(ZeroDivisionError):
                loaded.run()
            states.append(cpu_state(loaded.cpu))
        assert states[0] == states[1]

    def test_env_var_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        _code, _out, cpu = run_source(
            "\t.text\n\t.proc main\nmain:\n\tmov 0, %o0\n\tta 1\n"
            "\tmov 0, %o0\n\tta 0\n\t.endproc\n")
        assert not cpu.fast_path
        assert cpu.fast_stats()["block_runs"] == 0


class TestWatchdogParity:
    def test_insn_budget_trips_on_the_same_boundary(self):
        results = []
        for fast in (False, True):
            spec = WORKLOADS["030.matrix300"]
            asm = compile_source(workload_source("030.matrix300", 0.1),
                                 lang=spec.lang)
            loaded = load_program(assemble(asm), fast_path=fast)
            watchdog = Watchdog(max_instructions=3000)
            with pytest.raises(SimulationLimit):
                loaded.run(watchdog=watchdog)
            results.append(cpu_state(loaded.cpu))
        # the budget boundary is exact: both engines pause after
        # precisely the same retired instruction
        assert results[0]["instructions"] == results[1]["instructions"]
        assert results[0] == results[1]

    def test_run_steps_chunks_are_exact(self):
        states = []
        for fast in (False, True):
            spec = WORKLOADS["023.eqntott"]
            asm = compile_source(workload_source("023.eqntott", 0.1),
                                 lang=spec.lang)
            loaded = load_program(assemble(asm), fast_path=fast)
            cpu = loaded.cpu
            cpu.pc, cpu.npc = loaded.entry, loaded.entry + 4
            trail = []
            for chunk in (1, 7, 64, 1, 913, 3, 256):
                cpu.run_steps(chunk)
                trail.append(cpu_state(cpu))
            states.append(trail)
        assert states[0] == states[1]


class TestInvalidation:
    def test_patch_flushes_compiled_blocks(self):
        # a self-looping counter: run some iterations fast, patch an
        # instruction inside the hot block, and both engines must see
        # the new code on the next pass
        source = """
        int total;
        int main() {
            register int i;
            for (i = 0; i < 200; i = i + 1) total = total + 3;
            print(total);
            return 0;
        }
        """
        finals = []
        for fast in (False, True):
            loaded = load_program(assemble(compile_source(source)),
                                  fast_path=fast)
            cpu = loaded.cpu
            cpu.pc, cpu.npc = loaded.entry, loaded.entry + 4
            cpu.run_steps(300)            # warm the block cache mid-loop
            # neuter one store-feeding add by patching it to a nop
            target = None
            for offset in range(len(cpu.code.insns)):
                insn = cpu.code.insns[offset]
                if type(insn).__name__ == "ArithInsn" and \
                        insn.op == "add" and insn.op2.is_imm and \
                        insn.op2.value == 3:
                    target = cpu.code.base + offset * 4
            assert target is not None
            replacement = NopInsn()
            replacement.tag = "orig"
            cpu.code.patch(target, replacement)
            cpu.run_steps(10 ** 9)        # run to completion
            finals.append((loaded.output, cpu_state(cpu)))
            if fast:
                assert cpu.fast_stats()["invalidations"] >= 1
                assert cpu.fast_stats()["block_runs"] > 0
        assert finals[0] == finals[1]


SEEDED_SOURCE = """
int cells[16];
int state;
int step() {
    state = (state * 69069 + 12345) % 2048;
    cells[state % 16] = state + cells[(state + 5) % 16] / 3;
    return state;
}
int main() {
    register int i;
    state = SEED;
    for (i = 0; i < 14; i = i + 1) step();
    print(state);
    return 0;
}
"""


def record_seeded(seed, stride, fast):
    source = SEEDED_SOURCE.replace("SEED", str(seed % 2048))
    debugger = Debugger.for_source(source, optimize="full",
                                   fast_path=fast)
    watch_state = debugger.watch("state", action="log")
    watch_cells = debugger.watch("cells", action="log")
    recorder = debugger.record(stride=stride)
    reason = debugger.run()
    while reason != "exited":
        reason = debugger.run()
    return debugger, recorder, (watch_state, watch_cells)


class TestRecordedParity:
    @given(seed=st.integers(min_value=0, max_value=2 ** 31),
           stride=st.integers(min_value=40, max_value=500))
    @settings(max_examples=8, deadline=None)
    def test_seeded_recordings_are_byte_identical(self, seed, stride):
        slow = record_seeded(seed, stride, fast=False)
        fast = record_seeded(seed, stride, fast=True)
        # recorded trace bytes and digests
        assert fast[1].trace.to_bytes() == slow[1].trace.to_bytes()
        assert fast[1].trace.digest() == slow[1].trace.digest()
        # keyframe schedule and state digests
        assert ([(frame.index, frame.digest)
                 for frame in fast[1].keyframes] ==
                [(frame.index, frame.digest)
                 for frame in slow[1].keyframes])
        # monitor hit sequences, watchpoint by watchpoint
        for fast_wp, slow_wp in zip(fast[2], slow[2]):
            assert fast_wp.hits == slow_wp.hits
        # machine state
        assert cpu_state(fast[0].cpu) == cpu_state(slow[0].cpu)
        assert fast[0].output == slow[0].output

    def test_fast_recording_replays_backwards(self):
        # the recording made in fast mode must satisfy the replay
        # engine's divergence verification (replay re-executes with
        # whatever engine the session uses)
        debugger, recorder, watches = record_seeded(7, 120, fast=True)
        hits_before = list(watches[0].hits)
        assert hits_before
        reason = debugger.reverse_continue()
        assert reason.startswith("watch") or reason == "start"
        _entry, _addr, value = debugger.evaluate("state")
        assert value == hits_before[-1][2]
