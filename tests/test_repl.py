"""Tests for the interactive debugger REPL (scripted sessions)."""

from repro.debugger import Debugger
from repro.debugger.repl import DebuggerRepl

PROGRAM = """
int level;
int table[6];

int refill(int n) {
    register int i;
    for (i = 0; i < 6; i++) { table[i] = n + i; }
    level = n;
    return n;
}

int main() {
    refill(10);
    refill(20);
    print(level);
    return 0;
}
"""


def make_repl():
    debugger = Debugger.for_source(PROGRAM, optimize="full")
    lines = []
    repl = DebuggerRepl(debugger, write=lines.append)
    return repl, lines


def run_script(repl, commands):
    for command in commands:
        alive = repl.execute(command)
        if not alive:
            return False
    return True


class TestSession:
    def test_watch_run_stop_continue(self):
        repl, lines = make_repl()
        run_script(repl, ["watch level", "run"])
        assert any("stopped: level = 10" in line for line in lines)
        run_script(repl, ["continue"])
        assert any("stopped: level = 20" in line for line in lines)
        run_script(repl, ["continue"])
        assert any("program exited" in line for line in lines)

    def test_trace_does_not_stop(self):
        repl, lines = make_repl()
        run_script(repl, ["trace table[2]", "run", "info"])
        assert any("program exited" in line for line in lines)
        assert any("2 hit(s)" in line for line in lines)

    def test_print_scalar_and_array(self):
        repl, lines = make_repl()
        run_script(repl, ["run", "print level", "print table"])
        assert any("level = 20" in line for line in lines)
        assert any("table = {20, 21, 22, 23, 24, 25}" in line
                   for line in lines)

    def test_break_command(self):
        repl, lines = make_repl()
        run_script(repl, ["break refill", "run"])
        assert any("stopped: breakpoint:refill" in line
                   for line in lines)

    def test_checkpoint_restore_replay(self):
        repl, lines = make_repl()
        # checkpoint AFTER creating the watchpoint: restore rewinds the
        # watchpoint set to exactly what existed at checkpoint time
        run_script(repl, ["watch level", "checkpoint", "run"])
        assert any("stopped: level = 10" in line for line in lines)
        run_script(repl, ["restore", "run"])
        # after restore the same first hit replays
        assert sum("stopped: level = 10" in line for line in lines) == 2

    def test_run_after_exit_suggests_restore(self):
        repl, lines = make_repl()
        run_script(repl, ["run", "run"])
        assert any("use restore" in line for line in lines)

    def test_unwatch(self):
        repl, lines = make_repl()
        run_script(repl, ["watch level", "unwatch 0", "run"])
        assert any("deleted watchpoint #0" in line for line in lines)
        assert any("program exited" in line for line in lines)

    def test_disasm_command(self):
        repl, lines = make_repl()
        run_script(repl, ["disasm refill"])
        assert any("save %sp" in line for line in lines)

    def test_errors_reported_not_raised(self):
        repl, lines = make_repl()
        run_script(repl, ["watch nothing", "frobnicate", "unwatch 9",
                          "disasm missing", "print"])
        assert any("error: no symbol" in line for line in lines)
        assert any("unknown command" in line for line in lines)
        assert any("no watchpoint #9" in line for line in lines)
        assert any("no function" in line for line in lines)

    def test_quit_ends_session(self):
        repl, lines = make_repl()
        assert repl.execute("quit") is False
        assert repl.execute("q") is False

    def test_help(self):
        repl, lines = make_repl()
        run_script(repl, ["help"])
        assert any("checkpoint" in line for line in lines)


    def test_step_command(self):
        repl, lines = make_repl()
        run_script(repl, ["step", "step 5", "info"])
        pcs = [line for line in lines if line.startswith("pc=")]
        assert len(pcs) >= 3  # two step echoes + info line
        assert any("6 instructions" in line for line in lines)
