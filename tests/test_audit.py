"""End-to-end tests for the trace-backed soundness auditor
(``repro audit``): clean certification under every mode, monitor
auto-selection, and the ``analysis.unsound`` fault injection being
provably caught with its provenance chain."""

import pytest

from repro.analysis.audit import (audit_source, audit_workload,
                                  pick_monitors)
from repro.errors import (AuditError, ReproError,
                          UnsoundEliminationError)
from repro.faults import ANALYSIS_UNSOUND, FaultPlan

PROGRAM = """
int counts[12];
int total;
int *cursor;

int bump(int *dest, int amount) {
    *dest = *dest + amount;   /* store through a parameter pointer:  */
    return *dest;             /* only the ipa pass can eliminate it  */
}

int main() {
    int round;
    cursor = &total;
    for (round = 0; round < 4; round = round + 1) {
        bump(cursor, round + 1);
        counts[round] = total;
    }
    print(total);
    return 0;
}
"""


class TestCleanAudits:
    @pytest.mark.parametrize("mode", [None, "sym", "full", "ipa"])
    def test_source_certified_under_every_mode(self, mode):
        report = audit_source(PROGRAM, mode=mode)
        assert report.ok
        assert report.hits_verified > 0
        if mode is not None:
            assert report.sites_eliminated > 0
        rendered = report.render()
        assert "audit OK" in rendered

    def test_explicit_monitors(self):
        report = audit_source(PROGRAM, mode="ipa",
                              monitors=[("total", None)])
        assert report.monitors == [("total", None)]
        # one *cursor store per round, through the ipa-eliminated site
        assert report.hits_verified == 4

    def test_workload_audit_ipa(self):
        report = audit_workload("023.eqntott", mode="ipa", scale=0.1)
        assert report.ok and report.hits_verified > 0

    def test_unknown_workload_is_structured(self):
        with pytest.raises(AuditError) as excinfo:
            audit_workload("999.nonesuch")
        assert excinfo.value.reason == "unknown_workload"
        assert isinstance(excinfo.value, ReproError)


class TestMonitorSelection:
    def test_picks_most_written_globals(self):
        from repro.minic import compile_source
        from repro.session import run_uninstrumented

        asm = compile_source(PROGRAM)
        _code, loaded = run_uninstrumented(asm, record_writes=True)
        monitors = pick_monitors(loaded.program.symtab,
                                 loaded.cpu.write_trace)
        names = [name for name, _func in monitors]
        assert "counts" in names or "total" in names


class TestUnsoundInjection:
    def test_fault_injected_elimination_is_caught(self):
        # trip the first ipa elimination so it skips re-insertion
        # registration; the auditor must catch the swallowed hits and
        # name the site, pass and provenance chain
        faults = FaultPlan.nth(ANALYSIS_UNSOUND, 0)
        with pytest.raises(UnsoundEliminationError) as excinfo:
            audit_source(PROGRAM, mode="ipa", faults=faults,
                         monitors=[("counts", None), ("total", None)])
        err = excinfo.value
        assert err.site is not None
        assert err.elim_pass == "ipa"
        assert "UNSOUND" in err.provenance
        assert err.provenance.startswith("ipa:")
        assert err.addr is not None
        assert isinstance(err, AuditError)

    def test_clean_plan_not_flagged(self):
        # same program, same monitors, no injection: certifies
        report = audit_source(PROGRAM, mode="ipa",
                              monitors=[("counts", None),
                                        ("total", None)])
        assert report.ok


class TestAuditCli:
    def test_cli_audit_file(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "prog.c"
        path.write_text(PROGRAM)
        rc = main(["audit", str(path), "--mode", "ipa"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "audit OK (mode=ipa)" in out

    def test_cli_structured_error_nonzero_exit(self, capsys):
        from repro.cli import main
        rc = main(["audit", "--workload", "999.nonesuch"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "audit failed" in err
        assert "unknown_workload" in err
