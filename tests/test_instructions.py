"""Unit tests for instruction semantics, driven through tiny programs."""

import pytest

from repro.asm.loader import run_source
from repro.isa.instructions import (IsaError, Operand2, to_signed,
                                    to_unsigned)


def run_main(body, data="", **kwargs):
    """Run a main() whose body leaves the result in %o0 and prints it."""
    source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
{body}
        ta 1
        mov 0, %i0
        ret
        restore
        .endproc
        .data
{data}
""".format(body=body, data=data)
    code, out, cpu = run_source(source, **kwargs)
    assert code == 0
    return int(out[0]), cpu


class TestHelpers:
    def test_to_signed(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
        assert to_signed(0x80000000) == -(1 << 31)

    def test_to_unsigned(self):
        assert to_unsigned(-1) == 0xFFFFFFFF

    def test_operand2_range(self):
        with pytest.raises(IsaError):
            Operand2.imm(5000)
        with pytest.raises(IsaError):
            Operand2.imm(-5000)
        assert Operand2.imm(4095).value == 4095


class TestAlu:
    @pytest.mark.parametrize("body,expected", [
        ("mov 5, %o0\n add %o0, 3, %o0", 8),
        ("mov 5, %o0\n sub %o0, 9, %o0", -4),
        ("mov 12, %o0\n and %o0, 10, %o0", 8),
        ("mov 12, %o0\n or %o0, 3, %o0", 15),
        ("mov 12, %o0\n xor %o0, 10, %o0", 6),
        ("mov 12, %o0\n andn %o0, 10, %o0", 4),
        ("mov 3, %o0\n sll %o0, 4, %o0", 48),
        ("mov -16, %o0\n sra %o0, 2, %o0", -4),
        ("mov -16, %o0\n srl %o0, 28, %o0", 15),
        ("mov -7, %o0\n smul %o0, 6, %o0", -42),
        ("mov -43, %o0\n sdiv %o0, 6, %o0", -7),  # truncates toward zero
        ("mov 43, %o0\n sdiv %o0, -6, %o0", -7),
    ])
    def test_alu_ops(self, body, expected):
        result, _ = run_main(body)
        assert result == expected

    def test_sethi(self):
        result, _ = run_main("sethi 0x3FFFFF, %o0\n srl %o0, 10, %o0")
        assert result == 0x3FFFFF

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            run_main("mov 1, %o0\n sdiv %o0, 0, %o0")


class TestConditionCodes:
    def test_subcc_equal(self):
        body = """
        mov 5, %o1
        cmp %o1, 5
        be .eq
        nop
        mov 0, %o0
        ba .done
        nop
.eq:    mov 1, %o0
.done:
"""
        result, _ = run_main(body)
        assert result == 1

    @pytest.mark.parametrize("a,b,cond,taken", [
        (3, 5, "bl", 1), (5, 3, "bl", 0), (5, 5, "bl", 0),
        (3, 5, "ble", 1), (5, 5, "ble", 1), (6, 5, "ble", 0),
        (7, 5, "bg", 1), (5, 5, "bge", 1), (4, 5, "bge", 0),
        (-1, 1, "bl", 1),          # signed compare
        (-1, 1, "bgu", 1),         # unsigned: 0xffffffff > 1
        (1, -1, "blu", 1),
        (3, 3, "bne", 0), (4, 3, "bne", 1),
    ])
    def test_branch_conditions(self, a, b, cond, taken):
        body = """
        set {a}, %o1
        set {b}, %o2
        cmp %o1, %o2
        {cond} .t
        nop
        mov 0, %o0
        ba .done
        nop
.t:     mov 1, %o0
.done:
""".format(a=a, b=b, cond=cond)
        result, _ = run_main(body)
        assert result == taken

    def test_addcc_overflow_sets_v(self):
        # 0x7fffffff + 1 overflows; V corrects N, so bge (n xor v == 0)
        # IS taken: the true arithmetic result is positive.
        body = """
        set 0x7FFFFFFF, %o1
        addcc %o1, 1, %o1
        bge .ge
        nop
        mov 0, %o0
        ba .done
        nop
.ge:    mov 1, %o0
.done:
"""
        result, _ = run_main(body)
        assert result == 1


class TestDelaySlots:
    def test_delay_slot_executes_on_taken_branch(self):
        body = """
        mov 0, %o0
        ba .target
        add %o0, 7, %o0     ! delay slot must execute
.target:
"""
        result, _ = run_main(body)
        assert result == 7

    def test_delay_slot_executes_on_untaken_branch(self):
        body = """
        mov 0, %o0
        cmp %o0, 1
        be .skip
        add %o0, 7, %o0     ! executes: branch untaken, no annul
.skip:
"""
        result, _ = run_main(body)
        assert result == 7

    def test_annulled_untaken_conditional_skips_slot(self):
        body = """
        mov 0, %o0
        cmp %o0, 1
        be,a .skip
        add %o0, 7, %o0     ! annulled: branch untaken
.skip:
"""
        result, _ = run_main(body)
        assert result == 0

    def test_annulled_taken_conditional_executes_slot(self):
        body = """
        mov 1, %o0
        cmp %o0, 1
        be,a .skip
        add %o0, 7, %o0     ! executes: conditional taken with annul
.skip:
"""
        result, _ = run_main(body)
        assert result == 8

    def test_ba_annul_always_skips_slot(self):
        # the property Kessler single-instruction patches rely on
        body = """
        mov 0, %o0
        ba,a .skip
        add %o0, 7, %o0     ! must NOT execute
.skip:
"""
        result, _ = run_main(body)
        assert result == 0

    def test_call_delay_slot_executes(self):
        source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        call f
        mov 3, %o0           ! delay slot sets the argument
        mov %o0, %o0
        ta 1
        mov 0, %i0
        ret
        restore
        .endproc
        .proc f
f:
        retl
        add %o0, 10, %o0     ! leaf return, delay slot does the work
        .endproc
"""
        code, out, _ = run_source(source)
        assert code == 0 and out == ["13"]


class TestMemoryInsns:
    def test_store_load_word(self):
        result, _ = run_main("""
        set buf, %o1
        mov 77, %o2
        st %o2, [%o1+4]
        ld [%o1+4], %o0
""", data="buf: .skip 16")
        assert result == 77

    def test_byte_ops_big_endian(self):
        result, _ = run_main("""
        set buf, %o1
        set 0x11223344, %o2
        st %o2, [%o1]
        ldub [%o1+1], %o0
""", data="buf: .skip 8")
        assert result == 0x22

    def test_stb_modifies_one_byte(self):
        result, _ = run_main("""
        set buf, %o1
        set 0x11223344, %o2
        st %o2, [%o1]
        mov 0xAB, %o3
        stb %o3, [%o1+2]
        ld [%o1], %o0
        srl %o0, 8, %o0
        and %o0, 0xFF, %o0
""", data="buf: .skip 8")
        assert result == 0xAB

    def test_ldsb_sign_extends(self):
        result, _ = run_main("""
        set buf, %o1
        mov 0xFF, %o2
        stb %o2, [%o1]
        ldsb [%o1], %o0
""", data="buf: .skip 8")
        assert result == -1

    def test_register_indexed_address(self):
        result, _ = run_main("""
        set buf, %o1
        mov 8, %o2
        mov 55, %o3
        st %o3, [%o1+%o2]
        ld [%o1+8], %o0
""", data="buf: .skip 16")
        assert result == 55


class TestWindowsAndCalls:
    def test_nested_calls_preserve_locals(self):
        source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        mov 21, %l0
        call double
        mov %l0, %o0
        mov %o0, %o0
        ta 1
        mov 0, %i0
        ret
        restore
        .endproc
        .proc double
double:
        save %sp, -96, %sp
        mov 99, %l0           ! clobber callee %l0
        sll %i0, 1, %i0
        ret
        restore
        .endproc
"""
        code, out, _ = run_source(source)
        assert code == 0 and out == ["42"]

    def test_deep_recursion(self):
        source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        call sum
        mov 100, %o0
        mov %o0, %o0
        ta 1
        mov 0, %i0
        ret
        restore
        .endproc
        .proc sum
sum:
        save %sp, -96, %sp
        cmp %i0, 0
        bne .rec
        nop
        mov 0, %i0
        ret
        restore
.rec:
        sub %i0, 1, %o0
        call sum
        nop
        add %o0, %i0, %i0
        ret
        restore
        .endproc
"""
        code, out, cpu = run_source(source)
        assert out == ["5050"]
        assert cpu.max_window_depth > 8  # spilled and recovered
