"""Tests for checkpoint/restore and replayed execution (§5)."""

from repro.debugger import Debugger
from repro.machine.checkpoint import Checkpoint
from repro.minic.codegen import compile_source
from repro.session import DebugSession

PROGRAM = """
int grid[8];
int steps;

int advance() {
    register int i;
    for (i = 0; i < 8; i++) {
        grid[i] = grid[i] + i;
    }
    steps = steps + 1;
    return steps;
}

int main() {
    register int r;
    for (r = 0; r < 5; r++) {
        advance();
    }
    print(steps);
    print(grid[7]);
    return 0;
}
"""


class TestCpuCheckpoint:
    def _session(self):
        session = DebugSession.from_minic(PROGRAM, strategy="Bitmap")
        session.mrs.enable()
        return session

    def test_restore_reproduces_execution_exactly(self):
        session = self._session()
        snapshot = Checkpoint(session.cpu, output=session.output)
        session.run()
        first = (list(session.output), session.cpu.cycles,
                 session.cpu.instructions)
        snapshot.restore(session.cpu, output=session.output)
        session.cpu.run(start=session.loaded.entry)
        second = (list(session.output), session.cpu.cycles,
                  session.cpu.instructions)
        assert first == second

    def test_restore_rewinds_memory(self):
        session = self._session()
        sym = session.symbol("steps")
        snapshot = Checkpoint(session.cpu)
        session.run()
        assert session.cpu.mem.read_word(sym.address) == 5
        snapshot.restore(session.cpu)
        assert session.cpu.mem.read_word(sym.address) == 0

    def test_restore_rewinds_registers_and_windows(self):
        session = self._session()
        regs = session.cpu.regs
        regs.write(17, 1234)  # %l1
        regs.save_window()
        regs.write(17, 5678)
        snapshot = Checkpoint(session.cpu)
        regs.write(17, 9)
        regs.restore_window()
        snapshot.restore(session.cpu)
        assert regs.read(17) == 5678
        regs.restore_window()
        assert regs.read(17) == 1234

    def test_restore_rewinds_code_patches(self):
        """Dynamic Kessler patches are part of the checkpoint."""
        from repro.optimizer.pipeline import build_plan
        asm = compile_source(PROGRAM)
        _stmts, plan = build_plan(asm, mode="full")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        session.mrs.enable()
        snapshot = Checkpoint(session.cpu, mrs=session.mrs)
        info = next(iter(session.mrs.inst.patchable.values()))
        original = session.cpu.code.at(info.addr)
        session.mrs._activate(info.site, "symbol")
        assert session.cpu.code.at(info.addr) is not original
        snapshot.restore(session.cpu, mrs=session.mrs)
        assert session.cpu.code.at(info.addr) is original
        assert not session.mrs.active_sites()


class TestMonitorRoundTrip:
    """Checkpoint/restore with active monitored regions and pending
    dynamic patches reproduces the monitor-hit trace exactly."""

    def _optimized_session(self):
        from repro.optimizer.pipeline import build_plan
        asm = compile_source(PROGRAM)
        _stmts, plan = build_plan(asm, mode="full")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        session.mrs.enable()
        return session

    def test_hit_trace_identical_after_restore(self):
        session = self._optimized_session()
        sym = session.symbol("steps")
        session.mrs.pre_monitor("steps")
        session.mrs.create_region(sym.address, 4)
        snapshot = Checkpoint(session.cpu, output=session.output,
                              mrs=session.mrs)
        assert session.run() == 0
        first_hits = list(session.mrs.hits)
        first_output = list(session.output)
        assert len(first_hits) == 5

        snapshot.restore(session.cpu, output=session.output,
                         mrs=session.mrs)
        assert session.mrs.hits == []
        assert session.cpu.run(start=session.loaded.entry) == 0
        assert session.mrs.hits == first_hits
        assert session.output == first_output

    def test_pending_patches_survive_restore(self):
        """A patch activated before the snapshot must still be active —
        code *and* per-site flags — after a restore that crosses a
        deactivation."""
        session = self._optimized_session()
        session.mrs.pre_monitor("steps")
        active = list(session.mrs.active_sites())
        assert active
        patched = {site: session.cpu.code.at(
            session.mrs.inst.patchable[site].addr) for site in active}
        snapshot = Checkpoint(session.cpu, mrs=session.mrs)
        session.mrs.post_monitor("steps")
        assert not session.mrs.active_sites()
        snapshot.restore(session.cpu, mrs=session.mrs)
        assert session.mrs.active_sites() == active
        for site in active:
            info = session.mrs.inst.patchable[site]
            assert info.active
            assert session.cpu.code.at(info.addr) is patched[site]
        # and the patches still work: deactivation restores the original
        session.mrs.post_monitor("steps")
        assert not session.mrs.active_sites()

    def test_regions_created_after_restore_still_monitor(self):
        session = self._optimized_session()
        snapshot = Checkpoint(session.cpu, output=session.output,
                              mrs=session.mrs)
        assert session.run() == 0
        snapshot.restore(session.cpu, output=session.output,
                         mrs=session.mrs)
        sym = session.symbol("steps")
        session.mrs.pre_monitor("steps")
        session.mrs.create_region(sym.address, 4)
        assert session.cpu.run(start=session.loaded.entry) == 0
        assert session.mrs.hit_count() == 5


class TestDebuggerReplay:
    def test_watchpoints_can_change_between_replays(self):
        debugger = Debugger.for_source(PROGRAM, optimize=None)
        checkpoint = debugger.checkpoint()

        coarse = debugger.watch("grid")
        assert debugger.run() == "exited"
        total_hits = coarse.hit_count()
        assert total_hits == 40

        debugger.restore(checkpoint)
        coarse.delete()
        precise = debugger.watch("grid[3]")
        assert debugger.run() == "exited"
        assert precise.hit_count() == 5
        assert precise.last_value() == 15

    def test_output_rewound(self):
        debugger = Debugger.for_source(PROGRAM, optimize=None)
        checkpoint = debugger.checkpoint()
        debugger.run()
        first_output = list(debugger.output)
        debugger.restore(checkpoint)
        assert debugger.output == []
        debugger.run()
        assert debugger.output == first_output

    def test_midrun_checkpoint(self):
        debugger = Debugger.for_source(PROGRAM, optimize=None)
        watchpoint = debugger.watch("steps", action="stop",
                                    condition=lambda v: v == 2)
        assert debugger.run() == "watch"
        checkpoint = debugger.checkpoint()
        watchpoint.condition = lambda v: v == 4
        assert debugger.run() == "watch"
        assert watchpoint.last_value() == 4
        debugger.restore(checkpoint)
        watchpoint.condition = lambda v: v == 3
        assert debugger.run() == "watch"
        assert watchpoint.last_value() == 3
        # steps then advances past 3 without matching again
        assert debugger.run() == "exited"

    def test_region_state_restored(self):
        debugger = Debugger.for_source(PROGRAM, optimize=None)
        watchpoint = debugger.watch("steps")
        checkpoint = debugger.checkpoint()
        watchpoint.delete()
        assert len(debugger.mrs.regions) == 0
        debugger.restore(checkpoint)
        assert len(debugger.mrs.regions) == 1
        assert debugger.run() == "exited"
        assert debugger.watchpoints[0].hit_count() == 5
