"""Tests for the §1/§3 baseline implementations."""

import pytest

from repro.asm.assembler import assemble
from repro.asm.loader import load_program
from repro.baselines.hardware import (HardwareWatchpoints,
                                      WatchpointCapacityError)
from repro.baselines.hashtable import HashTableMrs, HashTableStrategy
from repro.baselines.trap import TrapBasedDebugger
from repro.baselines.vmprotect import PageProtectionDebugger
from repro.minic.codegen import compile_source
from repro.session import DebugSession, run_uninstrumented

PROGRAM = """
int data[8];
int other;
int main() {
    register int i;
    for (i = 0; i < 8; i = i + 1) {
        data[i] = i * 2;
    }
    other = data[5];
    print(other);
    return 0;
}
"""


def asm_and_baseline():
    asm = compile_source(PROGRAM)
    _code, base = run_uninstrumented(asm, record_writes=True)
    return asm, base


class TestTrapBaseline:
    def test_detects_hits(self):
        asm, base = asm_and_baseline()
        debugger = TrapBasedDebugger(asm, trap_cost=1000)
        target = debugger.loaded.program.symtab.lookup("data")
        debugger.watch(target.address + 8, 8)   # data[2], data[3]
        assert debugger.run() == 0
        assert [h[0] for h in debugger.hits] == \
            [target.address + 8, target.address + 12]

    def test_overhead_factor_scales_with_trap_cost(self):
        asm, base = asm_and_baseline()
        cheap = TrapBasedDebugger(asm, trap_cost=100)
        cheap.run()
        dear = TrapBasedDebugger(asm, trap_cost=10_000)
        dear.run()
        assert dear.overhead_factor(base.cpu.cycles) > \
            50 * cheap.overhead_factor(base.cpu.cycles)

    def test_factor_is_enormous_at_default_cost(self):
        asm, base = asm_and_baseline()
        debugger = TrapBasedDebugger(asm)
        debugger.run()
        assert debugger.overhead_factor(base.cpu.cycles) > 10_000


class TestVmProtect:
    def test_hits_and_false_faults(self):
        asm, base = asm_and_baseline()
        debugger = PageProtectionDebugger(asm)
        target = debugger.loaded.program.symtab.lookup("other")
        debugger.watch(target.address, 4)
        assert debugger.run() == 0
        assert len(debugger.hits) == 1
        # data[] shares the page: its 8 writes all false-fault
        assert debugger.false_faults == 8

    def test_fault_cost_charged(self):
        asm, base = asm_and_baseline()
        debugger = PageProtectionDebugger(asm, fault_cost=5000)
        target = debugger.loaded.program.symtab.lookup("other")
        debugger.watch(target.address, 4)
        debugger.run()
        overhead = debugger.loaded.cpu.cycles - base.cpu.cycles
        assert overhead >= 9 * 5000   # 1 hit + 8 false faults


class TestHardware:
    def _loaded(self):
        asm = compile_source(PROGRAM)
        return load_program(assemble(asm))

    def test_capacity_by_processor(self):
        loaded = self._loaded()
        sparc = HardwareWatchpoints(loaded, "SPARC")
        assert sparc.capacity == 1
        assert HardwareWatchpoints(self._loaded(), "i386").capacity == 4
        assert HardwareWatchpoints(self._loaded(), "R4000").capacity == 1

    def test_single_word_watch_works(self):
        loaded = self._loaded()
        hardware = HardwareWatchpoints(loaded, "SPARC")
        target = loaded.program.symtab.lookup("other")
        hardware.watch(target.address, 4)
        loaded.run()
        assert len(hardware.hits) == 1

    def test_capacity_exceeded(self):
        loaded = self._loaded()
        hardware = HardwareWatchpoints(loaded, "SPARC")
        target = loaded.program.symtab.lookup("data")
        hardware.watch(target.address, 4)
        with pytest.raises(WatchpointCapacityError):
            hardware.watch(target.address + 4, 4)

    def test_i386_takes_four_words(self):
        loaded = self._loaded()
        hardware = HardwareWatchpoints(loaded, "i386")
        target = loaded.program.symtab.lookup("data")
        for k in range(4):
            hardware.watch(target.address + 4 * k, 4)
        with pytest.raises(WatchpointCapacityError):
            hardware.watch(target.address + 16, 4)

    def test_unwatch_frees_capacity(self):
        loaded = self._loaded()
        hardware = HardwareWatchpoints(loaded, "SPARC")
        target = loaded.program.symtab.lookup("data")
        region = hardware.watch(target.address, 4)
        hardware.unwatch(region)
        hardware.watch(target.address + 4, 4)  # now fits

    def test_unknown_processor(self):
        with pytest.raises(ValueError):
            HardwareWatchpoints(self._loaded(), "m68k")


class TestHashTable:
    def test_hits_match_oracle(self):
        asm, base = asm_and_baseline()
        session = DebugSession.from_asm(asm, strategy=HashTableStrategy(),
                                        mrs_class=HashTableMrs)
        target = session.program.symtab.lookup("data")
        session.mrs.enable()
        session.mrs.create_region(target.address + 8, 8)
        session.run()
        expected = [(a, w) for _s, a, w in base.cpu.write_trace
                    if target.address + 8 <= a < target.address + 16]
        assert [(a, s) for a, s, _r in session.mrs.hits] == expected

    def test_delete_unlinks_chain(self):
        asm, base = asm_and_baseline()
        session = DebugSession.from_asm(asm, strategy=HashTableStrategy(),
                                        mrs_class=HashTableMrs)
        target = session.program.symtab.lookup("data")
        session.mrs.enable()
        region = session.mrs.create_region(target.address, 16)
        session.mrs.delete_region(region)
        session.mrs.create_region(target.address + 16, 4)  # data[4]
        session.run()
        assert session.mrs.hit_count() == 1

    def test_costlier_than_bitmap(self):
        asm, base = asm_and_baseline()
        hashed = DebugSession.from_asm(asm, strategy=HashTableStrategy(),
                                       mrs_class=HashTableMrs)
        hashed.mrs.enable()
        hashed.run()
        bitmap = DebugSession.from_asm(asm,
                                       strategy="BitmapInlineRegisters")
        bitmap.mrs.enable()
        bitmap.run()
        assert hashed.cpu.cycles > bitmap.cpu.cycles
