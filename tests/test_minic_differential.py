"""Differential testing of the mini-C compiler: random expressions are
evaluated by a Python reference (32-bit two's-complement semantics) and
by the compiled program on the simulator; the results must agree."""

from hypothesis import assume, given, settings, strategies as st

from repro.minic import compile_and_run


def wrap(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


class Expr:
    """Expression tree with a Python evaluator and a C renderer."""

    def __init__(self, text: str, value: int):
        self.text = text
        self.value = wrap(value)


def _binop(op, left: Expr, right: Expr) -> Expr:
    a, b = left.value, right.value
    if op == "+":
        value = a + b
    elif op == "-":
        value = a - b
    elif op == "*":
        value = a * b
    elif op == "/":
        if b == 0:
            return None
        quotient = abs(a) // abs(b)
        value = -quotient if (a < 0) != (b < 0) else quotient
    elif op == "%":
        if b == 0:
            return None
        quotient = abs(a) // abs(b)
        quotient = -quotient if (a < 0) != (b < 0) else quotient
        value = a - quotient * b
    elif op == "&":
        value = (a & 0xFFFFFFFF) & (b & 0xFFFFFFFF)
    elif op == "|":
        value = (a & 0xFFFFFFFF) | (b & 0xFFFFFFFF)
    elif op == "^":
        value = (a & 0xFFFFFFFF) ^ (b & 0xFFFFFFFF)
    elif op == "<<":
        value = a << (b & 31)
    elif op == ">>":
        value = a >> (b & 31)
    elif op == "<":
        value = 1 if a < b else 0
    elif op == "<=":
        value = 1 if a <= b else 0
    elif op == ">":
        value = 1 if a > b else 0
    elif op == ">=":
        value = 1 if a >= b else 0
    elif op == "==":
        value = 1 if a == b else 0
    elif op == "!=":
        value = 1 if a != b else 0
    elif op == "&&":
        value = 1 if a and b else 0
    elif op == "||":
        value = 1 if a or b else 0
    else:
        raise AssertionError(op)
    return Expr("(%s %s %s)" % (left.text, op, right.text), value)


_ARITH_OPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<", "<=", ">",
              ">=", "==", "!=", "&&", "||"]
_SHIFT_SAFE = ["+", "-", "&", "|", "^"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(-1000, 1000))
        return Expr(str(value) if value >= 0 else "(%d)" % value, value)
    op = draw(st.sampled_from(_ARITH_OPS))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    result = _binop(op, left, right)
    assume(result is not None)
    # keep intermediates well inside 32 bits so / and % semantics of the
    # reference and the machine cannot diverge on overflow cases
    assume(-2_000_000_000 < result.value < 2_000_000_000)
    return result


@settings(max_examples=60, deadline=None)
@given(expr=expressions())
def test_expression_evaluation_matches_reference(expr):
    source = "int main() { print(%s); return 0; }" % expr.text
    try:
        code, out, _cpu = compile_and_run(source)
    except Exception as exc:
        # the naive code generator has a documented expression-depth
        # limit (fixed evaluation-register stack); only that error is
        # acceptable
        assert "evaluation stack overflow" in str(exc)
        assume(False)
        return
    assert code == 0
    assert out == [str(expr.value)], expr.text


@settings(max_examples=30, deadline=None)
@given(shift=st.integers(0, 31), value=st.integers(-5000, 5000),
       op=st.sampled_from(["<<", ">>"]))
def test_shift_semantics(shift, value, op):
    if op == "<<":
        expected = wrap(value << shift)
    else:
        expected = wrap(value >> shift)  # arithmetic shift
    source = "int main() { int v; v = %d; print(v %s %d); return 0; }" \
        % (value, op, shift)
    _code, out, _cpu = compile_and_run(source)
    assert out == [str(expected)]


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=8))
def test_array_sum_matches_reference(values):
    decls = "int data[%d] = {%s};" % (
        len(values), ", ".join(str(v) for v in values))
    source = decls + """
    int main() {
        register int i;
        int total;
        total = 0;
        for (i = 0; i < %d; i++) { total += data[i]; }
        print(total);
        return 0;
    }
    """ % len(values)
    _code, out, _cpu = compile_and_run(source)
    assert out == [str(sum(values))]


@settings(max_examples=20, deadline=None)
@given(a=st.integers(-3000, 3000), b=st.integers(-3000, 3000),
       c=st.integers(-3000, 3000))
def test_ternary_matches_reference(a, b, c):
    expected = b if a > 0 else c
    source = "int main() { print(%d > 0 ? %d : %d); return 0; }" \
        % (a, b, c)
    _code, out, _cpu = compile_and_run(source)
    assert out == [str(expected)]
