"""Tests for the source-level debugger and fault isolation."""

import pytest

from repro.debugger import Debugger, DebuggerError, FaultIsolator

PROGRAM = """
struct rec { int key; int value; };

int counter;
int table[10];
struct rec entry;
int *alias;

int tick() {
    counter = counter + 1;
    return counter;
}

int store(int i, int v) {
    table[i] = v;
    return v;
}

int main() {
    register int i;
    alias = &counter;
    entry.key = 5;
    for (i = 0; i < 10; i = i + 1) {
        store(i, i * i);
    }
    tick();
    tick();
    *alias = 100;
    entry.value = table[3];
    print(counter);
    print(entry.value);
    return 0;
}
"""


def make(optimize="full"):
    return Debugger.for_source(PROGRAM, optimize=optimize)


class TestWatch:
    def test_global_counts_all_aliased_writes(self):
        debugger = make()
        watchpoint = debugger.watch("counter")
        assert debugger.run() == "exited"
        assert watchpoint.hit_count() == 3     # 2 ticks + *alias
        assert watchpoint.last_value() == 100

    def test_array_element(self):
        debugger = make()
        watchpoint = debugger.watch("table[3]")
        debugger.run()
        assert watchpoint.hit_count() == 1
        assert watchpoint.last_value() == 9

    def test_struct_field(self):
        debugger = make()
        key = debugger.watch("entry.key")
        value = debugger.watch("entry.value")
        debugger.run()
        assert key.hit_count() == 1 and key.last_value() == 5
        assert value.hit_count() == 1 and value.last_value() == 9

    def test_condition_filters(self):
        debugger = make()
        watchpoint = debugger.watch("counter",
                                    condition=lambda v: v >= 2)
        debugger.run()
        assert watchpoint.hit_count() == 2   # values 2 and 100

    def test_stop_and_resume(self):
        debugger = make()
        watchpoint = debugger.watch("counter", action="stop")
        assert debugger.run() == "watch"
        assert watchpoint.last_value() == 1
        assert debugger.run() == "watch"
        assert watchpoint.last_value() == 2
        assert debugger.run() == "watch"
        assert debugger.run() == "exited"
        assert debugger.output[-2:] == ["100", "9"]

    def test_unwatch_stops_reporting(self):
        debugger = make()
        watchpoint = debugger.watch("counter", action="stop")
        assert debugger.run() == "watch"
        watchpoint.delete()
        assert debugger.run() == "exited"
        assert watchpoint.hit_count() == 1

    def test_two_watchpoints_share_storage(self):
        debugger = make()
        a = debugger.watch("counter")
        b = debugger.watch("counter", condition=lambda v: v == 100)
        debugger.run()
        assert a.hit_count() == 3
        assert b.hit_count() == 1

    def test_index_out_of_range(self):
        debugger = make()
        with pytest.raises(DebuggerError):
            debugger.watch("table[99]")

    def test_unknown_symbol(self):
        debugger = make()
        with pytest.raises(DebuggerError):
            debugger.watch("nothing")

    def test_register_variable_rejected_helpfully(self):
        debugger = Debugger.for_source("""
        int main() {
            register int r;
            r = 1;
            print(r);
            return 0;
        }
        """, optimize=None)
        with pytest.raises(DebuggerError) as excinfo:
            debugger.watch("r", func="main")
        assert "register" in str(excinfo.value)

    def test_local_requires_function(self):
        debugger = Debugger.for_source("""
        int main() {
            int x;
            x = 1;
            print(x);
            return 0;
        }
        """, optimize=None)
        with pytest.raises(DebuggerError):
            debugger.watch("x")


class TestBreakpoints:
    def test_break_then_watch_local(self):
        debugger = Debugger.for_source("""
        int square_sum(int n) {
            int total;
            register int i;
            total = 0;
            for (i = 1; i <= n; i = i + 1) {
                total = total + i * i;
            }
            return total;
        }
        int main() { print(square_sum(4)); return 0; }
        """, optimize="full")
        breakpoint = debugger.break_at("square_sum")
        assert debugger.run().startswith("breakpoint")
        assert breakpoint.hits == 1
        watchpoint = debugger.watch("total", func="square_sum")
        assert debugger.run() == "exited"
        assert watchpoint.hit_count() == 5   # init + 4 updates
        assert watchpoint.last_value() == 30

    def test_breakpoint_callback_no_stop(self):
        debugger = make()
        entries = []
        debugger.break_at("tick",
                          callback=lambda dbg, bp: entries.append(bp.hits))
        assert debugger.run() == "exited"
        assert entries == [1, 2]

    def test_clear_breakpoint(self):
        debugger = make()
        breakpoint = debugger.break_at("tick")
        assert debugger.run().startswith("breakpoint")
        debugger.clear_breakpoint(breakpoint)
        assert debugger.run() == "exited"
        assert breakpoint.hits == 1


class TestFaultIsolation:
    def test_all_writers_allowed(self):
        debugger = Debugger.for_source(PROGRAM, optimize=None)
        isolator = FaultIsolator(debugger, ["main", "store", "tick"])
        isolator.protect("table[3]")
        debugger.run()
        assert isolator.violations == []

    def test_disallowed_writer_flagged(self):
        debugger = Debugger.for_source(PROGRAM, optimize=None)
        isolator = FaultIsolator(debugger, ["main"])
        isolator.protect("counter")
        debugger.run()
        funcs = {v.func for v in isolator.violations}
        assert "tick" in funcs
