"""The central soundness property (DESIGN.md §5): for any program, any
strategy, and any set of monitored regions, the notifications reported
by the instrumented run equal the oracle — the uninstrumented write
trace intersected with the regions — including under check elimination
with dynamic patch re-insertion."""

import pytest
from hypothesis import given, settings, strategies as st

from helpers import ALL_STRATEGIES, check_soundness, oracle_hits
from repro.minic.codegen import compile_source
from repro.optimizer.pipeline import build_plan
from repro.session import DebugSession, run_uninstrumented

#: a program exercising every write class: scalar globals, arrays with
#: monotonic loops, struct fields via pointers, heap writes, byte
#: writes, recursion (stack writes), and aliasing
RICH_PROGRAM = """
struct node { int value; int weight; };

int table[24];
int accum;
struct node boxes[4];
int *cursor;

int fill(int *dest, int n, int seed) {
    register int i;
    for (i = 0; i < n; i = i + 1) {
        dest[i] = seed + i * 3;
    }
    return n;
}

int sum_tree(int depth, int bias) {
    int left;
    if (depth == 0) {
        return bias;
    }
    left = sum_tree(depth - 1, bias + 1);
    return left + sum_tree(depth - 1, bias);
}

int main() {
    register int i;
    int *heap;
    fill(table, 24, 100);
    cursor = &accum;
    *cursor = 5;
    for (i = 0; i < 4; i = i + 1) {
        boxes[i].value = table[i];
        boxes[i].weight = i;
    }
    heap = sbrk(32);
    fill(heap, 8, 7);
    accum = accum + sum_tree(4, 0);
    print(accum);
    print(table[23]);
    print(boxes[2].weight);
    return 0;
}
"""


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestAllStrategies:
    def test_global_scalar(self, strategy):
        check_soundness(RICH_PROGRAM, strategy, [("accum", 0, 4)])

    def test_array_slice(self, strategy):
        check_soundness(RICH_PROGRAM, strategy, [("table", 40, 24)])

    def test_struct_field(self, strategy):
        check_soundness(RICH_PROGRAM, strategy, [("boxes", 12, 4)])

    def test_multiple_regions(self, strategy):
        check_soundness(RICH_PROGRAM, strategy,
                        [("accum", 0, 4), ("table", 0, 8),
                         ("boxes", 8, 8)])

    def test_no_regions_no_hits(self, strategy):
        session = check_soundness(RICH_PROGRAM, strategy, [])
        assert session.mrs.hit_count() == 0


def _plan_factory(mode):
    def factory(asm):
        _stmts, plan = build_plan(asm, mode=mode)
        return plan
    return factory


class TestOptimizedSoundness:
    """Elimination must never lose hits: the debugger-level protocol
    (PreMonitor before CreateMonitoredRegion) is exercised here."""

    @pytest.mark.parametrize("mode", ["sym", "full", "ipa"])
    def test_watched_symbol_with_elimination(self, mode):
        asm = compile_source(RICH_PROGRAM)
        _code, base = run_uninstrumented(asm, record_writes=True)
        _stmts, plan = build_plan(asm, mode=mode)
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        symtab = session.program.symtab
        session.mrs.enable()
        for name in ("accum", "table"):
            entry = symtab.lookup(name)
            session.mrs.pre_monitor(name)
            session.mrs.create_region(entry.address, entry.size)
        assert session.run() == 0
        assert session.output == base.output
        regions = [(symtab.lookup(n).address, symtab.lookup(n).size)
                   for n in ("accum", "table")]
        expected = oracle_hits(base.cpu.write_trace, regions)
        got = [(a, s) for a, s, _r in session.mrs.hits]
        assert got == expected

    def test_range_elimination_heap_region(self):
        """Monitor the heap block written by a range-eliminated loop."""
        asm = compile_source(RICH_PROGRAM)
        _code, base = run_uninstrumented(asm, record_writes=True)
        _stmts, plan = build_plan(asm, mode="full")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        heap_base = session.cpu.mem.brk
        session.mrs.enable()
        session.mrs.create_region(heap_base, 32)
        assert session.run() == 0
        expected = oracle_hits(base.cpu.write_trace, [(heap_base, 32)])
        got = [(a, s) for a, s, _r in session.mrs.hits]
        assert got == expected
        assert len(got) == 8

    def test_full_plan_check_free_when_unmonitored(self):
        """With no regions, a fully optimized scientific loop executes
        almost no check instructions (the Table 2 payoff)."""
        source = """
        int m[30];
        int main() {
            int i;
            for (i = 0; i < 30; i = i + 1) { m[i] = i; }
            print(m[29]);
            return 0;
        }
        """
        asm = compile_source(source)
        _stmts, plan = build_plan(asm, mode="full")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        session.mrs.enable()
        session.run()
        assert session.cpu.tag_counts.get("check", 0) == 0


# -- property-based region placement ----------------------------------------

_ASM = compile_source(RICH_PROGRAM)
_BASE = None


def _baseline():
    global _BASE
    if _BASE is None:
        _code, loaded = run_uninstrumented(_ASM, record_writes=True)
        _BASE = loaded
    return _BASE


@settings(max_examples=12, deadline=None)
@given(word_offsets=st.sets(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=4),
    strategy=st.sampled_from(["Bitmap", "CacheInline",
                              "BitmapInlineRegisters"]))
def test_random_regions_match_oracle(word_offsets, strategy):
    base = _baseline()
    symtab_entry = base.program.symtab.lookup("table")
    regions = [(symtab_entry.address + 4 * off, 4)
               for off in sorted(word_offsets)
               if 4 * off < symtab_entry.size]
    session = DebugSession.from_asm(_ASM, strategy=strategy)
    session.mrs.enable()
    for start, size in regions:
        session.mrs.create_region(start, size)
    assert session.run() == 0
    expected = oracle_hits(base.cpu.write_trace, regions)
    got = [(a, s) for a, s, _r in session.mrs.hits]
    assert got == expected


@settings(max_examples=12, deadline=None)
@given(mode=st.sampled_from(["sym", "full", "ipa"]),
       symbols=st.sets(st.sampled_from(["accum", "table", "boxes",
                                        "cursor"]),
                       min_size=1, max_size=3))
def test_differential_modes_agree_on_monitor_hits(mode, symbols):
    """Differential soundness: under every elimination mode, the hits
    on watched symbols must equal the unoptimized oracle — the §4.2
    pre-monitor protocol is exercised exactly as the debugger does."""
    base = _baseline()
    _stmts, plan = build_plan(_ASM, mode=mode)
    session = DebugSession.from_asm(
        _ASM, strategy="BitmapInlineRegisters", plan=plan)
    symtab = session.program.symtab
    session.mrs.enable()
    regions = []
    for name in sorted(symbols):
        entry = symtab.lookup(name)
        session.mrs.pre_monitor(name)
        session.mrs.create_region(entry.address, entry.size)
        regions.append((entry.address, entry.size))
    assert session.run() == 0
    assert session.output == base.output
    expected = oracle_hits(base.cpu.write_trace, regions)
    got = [(a, s) for a, s, _r in session.mrs.hits]
    assert got == expected


#: adversarial aliasing corpus: programs whose stores mix heap, frame
#: and multiple labels through shared pointers — ipa must *refuse*
#: (registering everywhere or leaving the check) and stay sound
ADVERSARIAL_SOURCES = [
    # one callee pokes both a global table and an sbrk block
    """
    int table[8];
    int mark;
    int poke(int *dest, int k) {
        dest[k % 8] = k;
        return k;
    }
    int main() {
        int *heap;
        poke(table, 3);
        heap = sbrk(32);
        poke(heap, 5);
        mark = table[3];
        print(mark);
        return 0;
    }
    """,
    # pointer selected by data-dependent branch between two labels
    """
    int left;
    int right;
    int trace[4];
    int main() {
        int *p;
        int i;
        for (i = 0; i < 4; i = i + 1) {
            if (i % 2) { p = &left; } else { p = &right; }
            *p = i;
            trace[i] = left + right;
        }
        print(trace[3]);
        return 0;
    }
    """,
]


@pytest.mark.parametrize("source_index",
                         range(len(ADVERSARIAL_SOURCES)))
def test_adversarial_aliasing_stays_sound_under_ipa(source_index):
    source = ADVERSARIAL_SOURCES[source_index]
    asm = compile_source(source)
    _code, base = run_uninstrumented(asm, record_writes=True)
    _stmts, plan = build_plan(asm, mode="ipa")
    session = DebugSession.from_asm(
        asm, strategy="BitmapInlineRegisters", plan=plan)
    symtab = session.program.symtab
    session.mrs.enable()
    regions = []
    for entry in symtab.globals():
        if entry.address is None:
            continue
        session.mrs.pre_monitor(entry.name)
        session.mrs.create_region(entry.address, entry.size)
        regions.append((entry.address, entry.size))
    assert session.run() == 0
    assert session.output == base.output
    expected = oracle_hits(base.cpu.write_trace, regions)
    got = [(a, s) for a, s, _r in session.mrs.hits]
    assert got == expected


@settings(max_examples=8, deadline=None)
@given(lo=st.integers(min_value=0, max_value=20),
       span=st.integers(min_value=1, max_value=6))
def test_random_regions_with_full_optimization(lo, span):
    base = _baseline()
    entry = base.program.symtab.lookup("table")
    size = min(4 * span, entry.size - 4 * lo)
    if size <= 0:
        return
    regions = [(entry.address + 4 * lo, size)]
    _stmts, plan = build_plan(_ASM, mode="full")
    session = DebugSession.from_asm(
        _ASM, strategy="BitmapInlineRegisters", plan=plan)
    session.mrs.enable()
    session.mrs.pre_monitor("table")
    for start, rsize in regions:
        session.mrs.create_region(start, rsize)
    assert session.run() == 0
    expected = oracle_hits(base.cpu.write_trace, regions)
    got = [(a, s) for a, s, _r in session.mrs.hits]
    assert got == expected
