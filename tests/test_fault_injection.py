"""Property suite for the fault-injection harness.

The two robustness properties:

* **atomicity** — under *any* fault schedule, every MRS operation
  either completes fully or leaves the debuggee + host bookkeeping
  bit-identical to the pre-call state;
* **soundness survives faults** — after arbitrary injected failures
  and rollbacks, the notifications on the surviving regions still
  equal the write-trace oracle.
"""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from helpers import oracle_hits
from repro.core.regions import MonitoredRegion
from repro.errors import (InjectedFault, MrsTransactionError, ReproError)
from repro.faults import (BITMAP_ALLOC, BITMAP_PUBLISH, FaultPlan,
                          MEMORY_WRITE, PATCH_INSTALL, PATCH_REMOVE,
                          SERVICE_CREATE, SERVICE_DELETE,
                          SERVICE_POST_MONITOR, SERVICE_PRE_MONITOR)
from repro.minic.codegen import compile_source
from repro.optimizer.pipeline import build_plan
from repro.session import DebugSession, run_uninstrumented

PROGRAM = """
int g;
int buf[32];

int poke(int *p, int v) {
    *p = v;
    return v;
}

int main() {
    register int i;
    g = 1;
    for (i = 0; i < 32; i = i + 1) {
        buf[i] = i;
    }
    poke(&g, 42);
    print(g);
    return 0;
}
"""

_ASM = compile_source(PROGRAM)
_PLAN = None
_BASE = None


def _optimization_plan():
    global _PLAN
    if _PLAN is None:
        _stmts, _PLAN = build_plan(_ASM, mode="full")
    return _PLAN


def _baseline():
    global _BASE
    if _BASE is None:
        _code, _BASE = run_uninstrumented(_ASM, record_writes=True)
    return _BASE


def _session(faults=None, optimized=False):
    if optimized:
        return DebugSession.from_asm(_ASM, strategy="BitmapInlineRegisters",
                                     plan=_optimization_plan(),
                                     faults=faults)
    return DebugSession.from_asm(_ASM, strategy="Bitmap", faults=faults)


def _fingerprint(session):
    """Every piece of state an MRS operation may touch, bit-exactly."""
    cpu, mrs = session.cpu, session.mrs
    return (
        dict(cpu.mem.words),
        tuple(cpu.code.insns),
        tuple(sorted(r.key() for r in mrs.regions)),
        dict(mrs.bitmap._segments),
        dict(mrs.bitmap._word_counts),
        dict(mrs.bitmap.region_counts),
        mrs.bitmap._arena_next,
        dict(mrs.superpages._counts),
        copy.deepcopy(mrs.patches.reasons),
        tuple(cpu.regs.globals),
        tuple(cpu.regs.monitors),
        tuple(info.active for info in mrs.inst.patchable.values()),
    )


MRS_FAILURES = (InjectedFault, MrsTransactionError)


class TestAtomicity:
    """Fault every occurrence of every injection point an operation
    trips; the operation must roll back bit-identically each time."""

    def _trips_during(self, operate, optimized=False):
        """(counts before, counts after) of a clean run of *operate*."""
        probe = _session(faults=FaultPlan(), optimized=optimized)
        before = dict(probe.mrs.faults.counts)
        operate(probe)
        return probe, before, dict(probe.mrs.faults.counts)

    def test_create_region_atomic_at_every_fault(self):
        def create(session):
            sym = session.symbol("buf")
            session.mrs.create_region(sym.address, 16)
        _probe, c0, c1 = self._trips_during(create)
        points = [p for p in (SERVICE_CREATE, BITMAP_ALLOC, BITMAP_PUBLISH,
                              MEMORY_WRITE)
                  if c1.get(p, 0) > c0.get(p, 0)]
        assert SERVICE_CREATE in points and BITMAP_ALLOC in points \
            and MEMORY_WRITE in points
        for point in points:
            for n in range(c0.get(point, 0), c1.get(point, 0)):
                session = _session(faults=FaultPlan.nth(point, n))
                before = _fingerprint(session)
                with pytest.raises(MRS_FAILURES):
                    create(session)
                assert _fingerprint(session) == before, \
                    "create not rolled back for %s[%d]" % (point, n)

    def test_delete_region_atomic_at_every_fault(self):
        def setup(session):
            sym = session.symbol("buf")
            return session.mrs.create_region(sym.address, 16)
        probe, _c0, after_create = self._trips_during(setup)
        probe.mrs.delete_region(MonitoredRegion(
            probe.symbol("buf").address, 16))
        after_delete = dict(probe.mrs.faults.counts)
        for point in (SERVICE_DELETE, MEMORY_WRITE):
            lo = after_create.get(point, 0)
            hi = after_delete.get(point, 0)
            assert hi > lo, "delete trips no %s" % point
            for n in range(lo, hi):
                session = _session(faults=FaultPlan.nth(point, n))
                region = setup(session)   # occurrences < lo: no fault
                before = _fingerprint(session)
                with pytest.raises(MRS_FAILURES):
                    session.mrs.delete_region(region)
                assert _fingerprint(session) == before
                assert region in session.mrs.regions

    def test_pre_monitor_atomic_at_every_fault(self):
        def pre(session):
            assert session.mrs.pre_monitor("g") >= 1
        _probe, c0, c1 = self._trips_during(pre, optimized=True)
        for point in (SERVICE_PRE_MONITOR, PATCH_INSTALL):
            lo, hi = c0.get(point, 0), c1.get(point, 0)
            assert hi > lo
            for n in range(lo, hi):
                session = _session(faults=FaultPlan.nth(point, n),
                                   optimized=True)
                before = _fingerprint(session)
                with pytest.raises(MRS_FAILURES):
                    session.mrs.pre_monitor("g")
                assert _fingerprint(session) == before
                assert not session.mrs.active_sites()

    def test_post_monitor_atomic_at_every_fault(self):
        def setup(session):
            session.mrs.pre_monitor("g")
        probe, _c0, after_pre = self._trips_during(setup, optimized=True)
        probe.mrs.post_monitor("g")
        after_post = dict(probe.mrs.faults.counts)
        for point in (SERVICE_POST_MONITOR, PATCH_REMOVE):
            lo = after_pre.get(point, 0)
            hi = after_post.get(point, 0)
            assert hi > lo
            for n in range(lo, hi):
                session = _session(faults=FaultPlan.nth(point, n),
                                   optimized=True)
                setup(session)
                before = _fingerprint(session)
                with pytest.raises(MRS_FAILURES):
                    session.mrs.post_monitor("g")
                assert _fingerprint(session) == before
                assert session.mrs.active_sites()   # patches kept

    def test_multi_segment_create_rolls_back_partial_allocation(self):
        """A region spanning two bitmap segments faults on the *second*
        allocation; the first segment's allocation must be unwound too
        (including the arena pointer)."""
        session = _session(faults=FaultPlan.nth(BITMAP_ALLOC, 1))
        layout = session.mrs.layout
        start = 0x60000000 + layout.segment_bytes - 8
        assert layout.segment_of(start) != layout.segment_of(start + 12)
        before = _fingerprint(session)
        with pytest.raises(MRS_FAILURES):
            session.mrs.create_region(start, 16)
        assert _fingerprint(session) == before
        assert session.mrs.bitmap._arena_next == \
            session.mrs.layout.arena_base
        # the schedule is spent, so the retry succeeds
        region = session.mrs.create_region(start, 16)
        assert region in session.mrs.regions
        assert len(session.mrs.bitmap._segments) == 2


class TestRecovery:
    def test_retry_after_rollback_succeeds_and_stays_sound(self):
        base = _baseline()
        session = _session(faults=FaultPlan.nth(BITMAP_ALLOC, 0))
        sym = session.symbol("g")
        session.mrs.enable()
        with pytest.raises(MRS_FAILURES):
            session.mrs.create_region(sym.address, 4)
        # the occurrence counter advanced past the scheduled fault, so
        # the retry — the client-visible recovery story — succeeds
        session.mrs.create_region(sym.address, 4)
        session.cpu.mem.faults = None
        assert session.run() == 0
        expected = oracle_hits(base.cpu.write_trace, [(sym.address, 4)])
        got = [(a, s) for a, s, _r in session.mrs.hits]
        assert got == expected

    def test_optimized_pre_monitor_retry_stays_sound(self):
        base = _baseline()
        session = _session(faults=FaultPlan.nth(PATCH_INSTALL, 0),
                           optimized=True)
        sym = session.symbol("g")
        session.mrs.enable()
        with pytest.raises(MRS_FAILURES):
            session.mrs.pre_monitor("g")
        session.mrs.pre_monitor("g")
        session.mrs.create_region(sym.address, 4)
        session.cpu.mem.faults = None
        assert session.run() == 0
        expected = oracle_hits(base.cpu.write_trace, [(sym.address, 4)])
        got = [(a, s) for a, s, _r in session.mrs.hits]
        assert got == expected

    def test_injected_fault_carries_context_and_is_logged(self):
        plan = FaultPlan.nth(SERVICE_CREATE, 0)
        session = _session(faults=plan)
        sym = session.symbol("g")
        with pytest.raises(InjectedFault) as excinfo:
            session.mrs.create_region(sym.address, 4)
        fault = excinfo.value
        assert fault.point == SERVICE_CREATE
        assert fault.occurrence == 0
        assert fault.context["region"] == (sym.address, 4)
        assert "pc" in fault.context
        point, occurrence, context = plan.fired[0]
        assert (point, occurrence) == (SERVICE_CREATE, 0)
        assert context == {"region": (sym.address, 4),
                           "pc": session.cpu.pc}

    def test_max_faults_caps_a_hostile_schedule(self):
        plan = FaultPlan(seed=3, rate=1.0, max_faults=1)
        session = _session(faults=plan)
        sym = session.symbol("g")
        with pytest.raises(MRS_FAILURES):
            session.mrs.create_region(sym.address, 4)
        assert len(plan.fired) == 1
        # the cap is reached: everything after succeeds
        region = session.mrs.create_region(sym.address, 4)
        session.mrs.delete_region(region)

    def test_debuggee_store_is_an_injection_point(self):
        plan = FaultPlan.nth(MEMORY_WRITE, 0)
        session = _session(faults=plan)
        session.mrs.enable()
        with pytest.raises(InjectedFault) as excinfo:
            session.run()
        assert "addr" in excinfo.value.context


class TestDeterminism:
    def test_seeded_schedule_is_reproducible(self):
        logs = []
        for _ in range(2):
            plan = FaultPlan(seed=99, rate=0.5)
            session = _session(faults=plan)
            sym = session.symbol("buf")
            for k in range(4):
                try:
                    session.mrs.create_region(sym.address + 8 * k, 4)
                except ReproError:
                    pass
            logs.append(list(plan.fired))
        assert logs[0] == logs[1]
        assert logs[0]   # rate 0.5 over dozens of trips: some fired


# -- the headline property, over random op sequences and schedules -----------

_OPS = ["create:g", "create:buf0", "create:buf1", "delete:g",
        "delete:buf0", "pre", "post"]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       rate=st.sampled_from([0.15, 0.4, 0.8]),
       ops=st.lists(st.sampled_from(_OPS), min_size=1, max_size=8))
def test_any_schedule_leaves_state_atomic_and_sound(seed, rate, ops):
    base = _baseline()
    plan = FaultPlan(seed=seed, rate=rate)
    session = _session(faults=plan)
    session.mrs.enable()
    symtab = session.program.symtab
    spans = {"g": (symtab.lookup("g").address, 4),
             "buf0": (symtab.lookup("buf").address, 8),
             "buf1": (symtab.lookup("buf").address + 16, 8)}
    live = {}
    for op in ops:
        before = _fingerprint(session)
        try:
            if op.startswith("create:"):
                name = op.split(":")[1]
                start, size = spans[name]
                live[name] = session.mrs.create_region(start, size)
            elif op.startswith("delete:"):
                name = op.split(":")[1]
                start, size = spans[name]
                session.mrs.delete_region(MonitoredRegion(start, size))
                live.pop(name, None)
            elif op == "pre":
                session.mrs.pre_monitor("g")
            else:
                session.mrs.post_monitor("g")
        except ReproError:
            # atomicity: a failed op must be a perfect no-op
            assert _fingerprint(session) == before
    # soundness of whatever survived: disarm injection and run
    session.cpu.mem.faults = None
    assert session.run() == 0
    regions = [region.key() for region in live.values()]
    expected = oracle_hits(base.cpu.write_trace, regions)
    got = [(a, s) for a, s, _r in session.mrs.hits]
    assert got == expected
