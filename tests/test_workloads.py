"""Tests for the SPEC-mimic workloads: determinism, scaling, and
behaviour preservation under instrumentation."""

import pytest

from repro.minic import compile_and_run
from repro.minic.codegen import compile_source
from repro.session import DebugSession, run_uninstrumented
from repro.workloads import (C_WORKLOADS, F_WORKLOADS, WORKLOAD_ORDER,
                             WORKLOADS, get_workload, workload_source)

SMALL = 0.25


class TestRegistry:
    def test_ten_workloads_in_paper_order(self):
        assert len(WORKLOAD_ORDER) == 10
        assert WORKLOAD_ORDER[0] == "023.eqntott"
        assert WORKLOAD_ORDER[-1] == "047.tomcatv"

    def test_language_split(self):
        assert len(C_WORKLOADS) == 4
        assert len(F_WORKLOADS) == 6

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("999.nothing")


@pytest.mark.parametrize("name", WORKLOAD_ORDER)
class TestEachWorkload:
    def test_runs_clean_and_deterministic(self, name):
        spec = WORKLOADS[name]
        source = workload_source(name, SMALL)
        code1, out1, cpu1 = compile_and_run(source, lang=spec.lang)
        code2, out2, cpu2 = compile_and_run(source, lang=spec.lang)
        assert code1 == code2 == 0
        assert out1 == out2
        assert cpu1.instructions == cpu2.instructions

    def test_scaling_changes_work(self, name):
        spec = WORKLOADS[name]
        _c, _o, small = compile_and_run(workload_source(name, SMALL),
                                        lang=spec.lang)
        _c, _o, large = compile_and_run(workload_source(name, 0.5),
                                        lang=spec.lang)
        assert large.instructions > small.instructions

    def test_instrumentation_preserves_output(self, name):
        spec = WORKLOADS[name]
        asm = compile_source(workload_source(name, SMALL),
                             lang=spec.lang)
        _code, base = run_uninstrumented(asm)
        session = DebugSession.from_asm(asm, strategy="CacheInline")
        session.mrs.enable()
        assert session.run() == 0
        assert session.output == base.output


class TestCharacteristics:
    def test_eqntott_is_write_starved(self):
        spec = WORKLOADS["023.eqntott"]
        _c, _o, cpu = compile_and_run(workload_source("023.eqntott", 1.0),
                                      lang=spec.lang)
        assert cpu.stores / cpu.instructions < 0.03

    def test_li_is_write_dense(self):
        spec = WORKLOADS["022.li"]
        _c, _o, cpu = compile_and_run(workload_source("022.li", SMALL),
                                      lang=spec.lang)
        assert cpu.stores / cpu.instructions > 0.06

    def test_fortran_workloads_tagged(self):
        for name in F_WORKLOADS:
            source = workload_source(name, SMALL)
            asm = compile_source(source, lang=WORKLOADS[name].lang)
            assert ".lang F" in asm

    def test_li_recursion_exceeds_register_windows(self):
        spec = WORKLOADS["022.li"]
        _c, _o, cpu = compile_and_run(workload_source("022.li", SMALL),
                                      lang=spec.lang)
        assert cpu.max_window_depth > 8
