"""Tests for the §4.2 control-flow verification machinery (%fp shadow
stack, indirect-jump checks) and the §5 read-monitoring extension."""

import pytest

from repro.machine.traps import DebuggeeFault
from repro.minic.codegen import compile_source
from repro.optimizer.pipeline import build_plan
from repro.session import DebugSession, run_uninstrumented

CALLS = """
int helper(int x) {
    int local;
    local = x * 2;
    return local;
}
int main() {
    print(helper(21));
    return 0;
}
"""


class TestFpShadowStack:
    def test_balanced_calls_pass(self):
        asm = compile_source(CALLS)
        _stmts, plan = build_plan(asm, mode="sym")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        session.mrs.enable()
        assert session.run() == 0
        assert session.output == ["42"]
        assert session.cpu.tag_counts.get("fpcheck", 0) > 0
        assert session.cpu.tag_counts.get("jmpcheck", 0) > 0

    def test_fp_corruption_detected(self):
        """A function that clobbers %fp before returning trips the
        shadow-stack verification (ta 0x43 -> DebuggeeFault)."""
        asm = """
        .lang C
        .text
        .proc main
main:
        save %sp, -96, %sp
        mov 0, %i0
        add %fp, 64, %fp       ! corrupt the frame pointer
        ret
        restore
        .endproc
"""
        _stmts, plan = build_plan(asm, mode="sym")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        session.mrs.enable()
        with pytest.raises(DebuggeeFault):
            session.run()

    def test_return_address_corruption_detected(self):
        """A return address pointing outside text fails the indirect
        jump check."""
        asm = """
        .lang C
        .text
        .proc main
main:
        save %sp, -96, %sp
        set 0x30000000, %i7    ! corrupt the return address
        mov 0, %i0
        ret
        restore
        .endproc
"""
        _stmts, plan = build_plan(asm, mode="sym")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        session.mrs.enable()
        with pytest.raises(DebuggeeFault):
            session.run()

    def test_deep_recursion_shadow_stack(self):
        source = """
        int down(int n) {
            int x;
            x = n;
            if (n == 0) return 0;
            return x + down(n - 1);
        }
        int main() { print(down(25)); return 0; }
        """
        asm = compile_source(source)
        _stmts, plan = build_plan(asm, mode="full")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        session.mrs.enable()
        assert session.run() == 0
        assert session.output == ["325"]


class TestReadMonitoring:
    SOURCE = """
    int shared[4];
    int main() {
        int v;
        shared[1] = 10;
        v = shared[1];
        v = v + shared[2];
        shared[3] = v;
        print(v);
        return 0;
    }
    """

    def test_reads_and_writes_distinguished(self):
        session = DebugSession.from_minic(self.SOURCE, strategy="Bitmap",
                                          monitor_reads=True)
        sym = session.symbol("shared")
        session.mrs.enable()
        session.mrs.create_region(sym.address, 16)
        session.run()
        kinds = [(addr - sym.address, is_read)
                 for addr, _size, is_read in session.mrs.hits]
        assert kinds == [(4, False), (4, True), (8, True), (12, False)]

    def test_reads_not_monitored_by_default(self):
        session = DebugSession.from_minic(self.SOURCE, strategy="Bitmap")
        sym = session.symbol("shared")
        session.mrs.enable()
        session.mrs.create_region(sym.address, 16)
        session.run()
        assert all(not is_read for _a, _s, is_read in session.mrs.hits)
        assert session.mrs.hit_count() == 2

    @pytest.mark.parametrize("strategy", ["Bitmap",
                                          "BitmapInlineRegisters",
                                          "Cache", "CacheInline"])
    def test_read_checks_across_strategies(self, strategy):
        session = DebugSession.from_minic(self.SOURCE, strategy=strategy,
                                          monitor_reads=True)
        sym = session.symbol("shared")
        session.mrs.enable()
        session.mrs.create_region(sym.address + 4, 4)
        session.run()
        reads = [h for h in session.mrs.hits if h[2]]
        writes = [h for h in session.mrs.hits if not h[2]]
        assert len(reads) == 1 and len(writes) == 1

    def test_read_of_clobbering_load_base(self):
        """A load that overwrites its own base register must still be
        checked with the correct address (checks go before loads)."""
        asm = """
        .lang C
        .text
        .proc main
main:
        save %sp, -96, %sp
        set G_cell, %l0
        mov 9, %l1
        st %l1, [%l0]
        ld [%l0], %l0       ! destroys the base
        mov %l0, %i0
        ret
        restore
        .endproc
        .data
        .align 8
G_cell: .word 0
        .stabs "cell", global, G_cell, 4
"""
        session = DebugSession.from_asm(asm, strategy="Bitmap",
                                        monitor_reads=True)
        sym = session.program.symtab.lookup("cell")
        session.mrs.enable()
        session.mrs.create_region(sym.address, 4)
        assert session.run() == 9
        assert [h[2] for h in session.mrs.hits] == [False, True]


class TestMonitorLibraryIsolation:
    def test_check_in_progress_flag_restored(self):
        from repro.isa.registers import REGISTER_IDS
        session = DebugSession.from_minic(CALLS, strategy="Bitmap")
        session.mrs.enable()
        session.run()
        assert session.cpu.regs.read(REGISTER_IDS["%g3"]) == 0

    def test_monitor_structures_unreachable_by_program(self):
        """The debuggee's own writes never land in monitor memory."""
        asm = compile_source(CALLS)
        _code, base = run_uninstrumented(asm, record_writes=True)
        for _site, addr, _width in base.cpu.write_trace:
            assert addr < 0xA0000000


class TestDoublewordChecks:
    """§3: "one-word and two-word write instructions ... incur identical
    overhead" — aligned std checks two adjacent bitmap bits at once."""

    ASM = """
        .lang C
        .text
        .proc main
main:
        save %sp, -96, %sp
        set G_pair, %l0
        mov 7, %l2
        mov 9, %l3
        std %l2, [%l0]        ! doubleword write covering two words
        ld [%l0+4], %i0
        ret
        restore
        .endproc
        .data
        .align 8
G_pair: .skip 16
        .stabs "pair", global, G_pair, 16, 4
"""

    @pytest.mark.parametrize("strategy", ["Bitmap",
                                          "BitmapInlineRegisters",
                                          "CacheInline"])
    @pytest.mark.parametrize("offset,expected", [(0, 1), (4, 1), (8, 0)])
    def test_std_hits_either_word(self, strategy, offset, expected):
        session = DebugSession.from_asm(self.ASM, strategy=strategy)
        sym = session.program.symtab.lookup("pair")
        session.mrs.enable()
        session.mrs.create_region(sym.address + offset, 4)
        assert session.run() == 9
        assert session.mrs.hit_count() == expected
        if expected:
            addr, size, is_read = session.mrs.hits[0]
            assert size == 8
