"""Unit tests for the windowed register file."""

import pytest

from repro.isa.registers import (FP, NUM_WINDOWS, REGISTER_IDS,
                                 RegisterFile, SP, WindowError,
                                 register_name)


def rid(name):
    return REGISTER_IDS[name]


class TestRegisterNames:
    def test_aliases(self):
        assert rid("%sp") == rid("%o6")
        assert rid("%fp") == rid("%i6")
        assert register_name(SP) == "%sp"
        assert register_name(FP) == "%fp"

    def test_all_names_roundtrip(self):
        for name, value in REGISTER_IDS.items():
            if name in ("%o6", "%i6"):
                continue
            assert register_name(value) == name

    def test_monitor_registers_exist(self):
        for k in range(4):
            assert "%%m%d" % k in REGISTER_IDS


class TestBasicReadWrite:
    def test_g0_reads_zero(self):
        regs = RegisterFile()
        regs.write(0, 12345)
        assert regs.read(0) == 0

    def test_write_read_globals(self):
        regs = RegisterFile()
        regs.write(rid("%g3"), 77)
        assert regs.read(rid("%g3")) == 77

    def test_values_truncated_to_32_bits(self):
        regs = RegisterFile()
        regs.write(rid("%g1"), 0x1_0000_0005)
        assert regs.read(rid("%g1")) == 5

    def test_monitor_registers(self):
        regs = RegisterFile()
        regs.write(rid("%m2"), 0xDEAD)
        assert regs.read(rid("%m2")) == 0xDEAD

    def test_ins_read_zero_without_parent(self):
        regs = RegisterFile()
        assert regs.read(rid("%i3")) == 0


class TestWindows:
    def test_save_maps_outs_to_ins(self):
        regs = RegisterFile()
        regs.write(rid("%o0"), 42)
        regs.save_window()
        assert regs.read(rid("%i0")) == 42

    def test_restore_maps_ins_back_to_outs(self):
        regs = RegisterFile()
        regs.write(rid("%o0"), 1)
        regs.save_window()
        regs.write(rid("%i0"), 99)  # return value
        regs.restore_window()
        assert regs.read(rid("%o0")) == 99

    def test_locals_are_private_per_window(self):
        regs = RegisterFile()
        regs.write(rid("%l0"), 5)
        regs.save_window()
        assert regs.read(rid("%l0")) == 0
        regs.write(rid("%l0"), 7)
        regs.restore_window()
        assert regs.read(rid("%l0")) == 5

    def test_restore_without_save_raises(self):
        regs = RegisterFile()
        with pytest.raises(WindowError):
            regs.restore_window()

    def test_no_overflow_until_file_is_full(self):
        regs = RegisterFile()
        overflows = [regs.save_window() for _ in range(NUM_WINDOWS - 2)]
        assert overflows == [False] * (NUM_WINDOWS - 2)

    def test_bulk_spill_amortizes_overflow_traps(self):
        regs = RegisterFile()
        overflows = [regs.save_window() for _ in range(20)]
        # first NUM_WINDOWS-2 saves are free; then one trap per
        # WINDOW_TRAP_BULK further saves (7, 11, 15, 19)
        assert sum(overflows) == 4
        assert overflows[NUM_WINDOWS - 2] is True
        assert overflows[NUM_WINDOWS - 1] is False

    def test_steady_depth_oscillation_does_not_trap(self):
        # the property procedure-call write checks rely on: at constant
        # call depth, a save/restore pair traps at most once, not forever
        regs = RegisterFile()
        for _ in range(12):
            regs.save_window()
        traps = 0
        for _ in range(50):
            traps += bool(regs.save_window())
            traps += bool(regs.restore_window())
        assert traps <= 2

    def test_underflow_fills_match_overflow_spills(self):
        regs = RegisterFile()
        spills = sum(bool(regs.save_window()) for _ in range(20))
        fills = sum(bool(regs.restore_window()) for _ in range(20))
        assert spills == fills == 4

    def test_deep_recursion_values_survive_spills(self):
        regs = RegisterFile()
        depth = 40
        for i in range(depth):
            regs.write(rid("%l1"), i)
            regs.save_window()
        for i in reversed(range(depth)):
            regs.restore_window()
            assert regs.read(rid("%l1")) == i

    def test_depth_tracking(self):
        regs = RegisterFile()
        assert regs.depth == 1
        regs.save_window()
        regs.save_window()
        assert regs.depth == 3
        regs.restore_window()
        assert regs.depth == 2
