"""Tests for the DebugSession pipeline facade and loader edge cases."""

import pytest

from repro.machine.costs import CostModel
from repro.session import DebugSession, run_uninstrumented

SOURCE = """
int value;
int main() {
    value = 3;
    print(value);
    return value;
}
"""


class TestDebugSession:
    def test_from_minic_roundtrip(self):
        session = DebugSession.from_minic(SOURCE)
        session.mrs.enable()
        assert session.run() == 3
        assert session.output == ["3"]

    def test_symbol_helper(self):
        session = DebugSession.from_minic(SOURCE)
        entry = session.symbol("value")
        assert entry.kind == "global" and entry.size == 4

    def test_unknown_symbol_raises(self):
        from repro.asm.symtab import SymbolError
        session = DebugSession.from_minic(SOURCE)
        with pytest.raises(SymbolError):
            session.symbol("missing")

    def test_custom_cost_model_threads_through(self):
        slow = CostModel(trap_base=5000)
        fast = CostModel(trap_base=0)
        slow_session = DebugSession.from_minic(SOURCE, costs=slow)
        fast_session = DebugSession.from_minic(SOURCE, costs=fast)
        slow_session.run()
        fast_session.run()
        # the print trap costs 5000 extra cycles in the slow model
        assert slow_session.cpu.cycles > fast_session.cpu.cycles + 4000

    def test_custom_cache_size(self):
        session = DebugSession.from_minic(SOURCE, cache_bytes=1024)
        assert session.cpu.cache.num_lines == 32
        session.run()

    def test_record_writes(self):
        session = DebugSession.from_minic(SOURCE, record_writes=True)
        session.run()
        assert len(session.cpu.write_trace) == 1


class TestRunUninstrumented:
    def test_returns_loaded_program(self):
        from repro.minic.codegen import compile_source
        code, loaded = run_uninstrumented(compile_source(SOURCE))
        assert code == 3
        assert loaded.output == ["3"]

    def test_instruction_budget_respected(self):
        from repro.machine.cpu import SimulationLimit
        from repro.minic.codegen import compile_source
        looping = compile_source(
            "int main() { while (1) {} return 0; }")
        with pytest.raises(SimulationLimit):
            run_uninstrumented(looping, max_instructions=500)
