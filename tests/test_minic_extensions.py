"""Tests for the extended mini-C features: do-while, compound
assignment, increments, ternary, string literals and puts()."""

import pytest

from repro.minic import CompileError, compile_and_run
from repro.session import DebugSession


def run(body, globals_="", expect=None):
    source = globals_ + "\nint main() {\n" + body + "\nreturn 0;\n}\n"
    code, out, cpu = compile_and_run(source)
    assert code == 0
    if expect is not None:
        assert "".join(out) == expect, out
    return out, cpu


class TestDoWhile:
    def test_executes_body_at_least_once(self):
        run("""
            int n;
            n = 100;
            do { n = n + 1; } while (n < 0);
            print(n);
        """, expect="101")

    def test_loops_until_condition_fails(self):
        run("""
            int i; int s;
            i = 0; s = 0;
            do { s += i; i++; } while (i < 5);
            print(s);
        """, expect="10")

    def test_break_and_continue(self):
        run("""
            int i; int s;
            i = 0; s = 0;
            do {
                i++;
                if (i % 2 == 0) continue;
                if (i > 7) break;
                s += i;
            } while (i < 100);
            print(s);
        """, expect="16")  # 1+3+5+7

    def test_do_while_write_correctly_stays_checked(self):
        """A do-while body runs before any bound test, so no assert
        dominates its writes: the optimizer must NOT range-eliminate
        them (soundness beats coverage), and hits must still be exact.
        """
        from helpers import check_soundness
        from repro.minic.codegen import compile_source
        from repro.optimizer.pipeline import build_plan
        source = """
        int a[20];
        int main() {
            int i;
            i = 0;
            do {
                a[i] = i;
                i++;
            } while (i < 20);
            print(a[19]);
            return 0;
        }
        """
        asm = compile_source(source)
        _stmts, plan = build_plan(asm, mode="full")
        from repro.instrument.plan import ELIM_RANGE
        # the unbounded-on-first-iteration write keeps its check
        assert ELIM_RANGE not in plan.eliminate.values()
        check_soundness(source, "BitmapInlineRegisters", [("a", 0, 80)])


class TestCompoundAssignment:
    @pytest.mark.parametrize("body,result", [
        ("x = 10; x += 5;", 15),
        ("x = 10; x -= 3;", 7),
        ("x = 10; x *= 4;", 40),
        ("x = 10; x /= 3;", 3),
        ("x = 10; x %= 3;", 1),
    ])
    def test_scalar_ops(self, body, result):
        run("int x;\n" + body + "\nprint(x);", expect=str(result))

    def test_compound_on_array_element(self):
        run("""
            int i;
            for (i = 0; i < 4; i++) { a[i] = i; }
            a[2] += 100;
            print(a[2]);
        """, globals_="int a[4];", expect="102")

    def test_compound_on_struct_field(self):
        run("""
            p.x = 5;
            p.x *= 3;
            print(p.x);
        """, globals_="struct pt { int x; }; struct pt p;", expect="15")

    def test_compound_through_pointer(self):
        run("""
            int v;
            int *p;
            v = 8;
            p = &v;
            *p += 2;
            print(v);
        """, expect="10")


class TestIncrements:
    def test_postfix_statement(self):
        run("int x; x = 1; x++; x++; print(x);", expect="3")

    def test_prefix_statement(self):
        run("int x; x = 5; --x; print(x);", expect="4")

    def test_in_for_header(self):
        run("""
            int i; int s;
            s = 0;
            for (i = 0; i < 6; i++) { s += i; }
            print(s);
        """, expect="15")

    def test_on_register_variable(self):
        run("""
            register int r;
            int s;
            s = 0;
            for (r = 0; r < 4; ++r) { s += r; }
            print(s);
        """, expect="6")

    def test_increment_still_monotonic_for_optimizer(self):
        from repro.minic.codegen import compile_source
        from repro.optimizer.pipeline import build_plan
        asm = compile_source("""
        int a[12];
        int main() {
            int i;
            for (i = 0; i < 12; i++) { a[i] = i; }
            print(a[11]);
            return 0;
        }
        """)
        _stmts, plan = build_plan(asm, mode="full")
        assert plan.summary()["range"] == 1


class TestTernary:
    def test_basic(self):
        run("int x; x = 3 > 2 ? 10 : 20; print(x);", expect="10")
        run("int x; x = 3 < 2 ? 10 : 20; print(x);", expect="20")

    def test_nested_in_expression(self):
        run("""
            int x;
            x = 5;
            print((x > 3 ? 1 : 0) + (x > 10 ? 100 : 200));
        """, expect="201")

    def test_sides_evaluated_lazily(self):
        run("""
            int zero;
            zero = 0;
            print(zero != 0 ? 100 / zero : -1);
        """, expect="-1")

    def test_as_call_argument(self):
        source = """
        int pick(int v) { return v * 2; }
        int main() {
            print(pick(1 < 2 ? 21 : 0));
            return 0;
        }
        """
        code, out, _ = compile_and_run(source)
        assert out == ["42"]


class TestStrings:
    def test_puts_basic(self):
        run('puts("hi");', expect="hi")

    def test_escapes(self):
        run('puts("a\\tb\\n");', expect="a\tb\n")

    def test_string_deduplication(self):
        from repro.minic.codegen import compile_source
        asm = compile_source("""
        int main() {
            puts("same");
            puts("same");
            puts("different");
            return 0;
        }
        """)
        assert asm.count(".Lstr0") >= 2
        assert ".Lstr2" not in asm

    def test_string_as_pointer_value(self):
        run("""
            int *p;
            p = "AB";
            putc(p[0] >> 24);
        """, expect="A")

    def test_string_in_ternary(self):
        run('int f; f = 0; puts(f ? "yes" : "no");', expect="no")

    def test_watching_strings_region(self):
        """Instrumented programs with strings still run correctly."""
        source = """
        int main() {
            puts("checked\\n");
            return 0;
        }
        """
        session = DebugSession.from_minic(source, strategy="Bitmap")
        session.mrs.enable()
        assert session.run() == 0
        assert "".join(session.output) == "checked\n"


class TestErrors:
    def test_compound_requires_lvalue(self):
        with pytest.raises(CompileError):
            compile_and_run("int main() { 1 += 2; return 0; }")

    def test_increment_requires_lvalue(self):
        with pytest.raises(CompileError):
            compile_and_run("int main() { 5++; return 0; }")

    def test_ternary_missing_colon(self):
        with pytest.raises(CompileError):
            compile_and_run("int main() { return 1 ? 2; }")

    def test_bad_string_escape(self):
        with pytest.raises(CompileError):
            compile_and_run('int main() { puts("\\q"); return 0; }')
