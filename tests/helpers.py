"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.regions import MonitoredRegion, RegionSet
from repro.minic.codegen import compile_source
from repro.session import DebugSession, run_uninstrumented

ALL_STRATEGIES = ["Bitmap", "BitmapInline", "BitmapInlineRegisters",
                  "Cache", "CacheInline"]


def run_asm(source: str, **kwargs):
    from repro.asm.loader import run_source
    return run_source(source, **kwargs)


def oracle_hits(write_trace, regions: List[Tuple[int, int]]
                ) -> List[Tuple[int, int]]:
    """Expected (addr, size) notifications for the given write trace."""
    region_set = RegionSet()
    for start, size in regions:
        region_set.add(MonitoredRegion(start, size))
    hits = []
    for _site, addr, width in write_trace:
        if region_set.hit(addr, width):
            hits.append((addr, width))
    return hits


def session_with_regions(c_source: str, strategy: str,
                         regions: List[Tuple[int, int]],
                         lang: str = "C", plan=None,
                         record_writes: bool = False) -> DebugSession:
    session = DebugSession.from_minic(c_source, lang=lang,
                                      strategy=strategy, plan=plan,
                                      record_writes=record_writes)
    session.mrs.enable()
    for start, size in regions:
        session.mrs.create_region(start, size)
    return session


def check_soundness(c_source: str, strategy: str,
                    region_specs: List[Tuple[str, int, int]],
                    lang: str = "C", plan_factory=None) -> DebugSession:
    """Run instrumented + uninstrumented; assert hits == oracle.

    *region_specs* are (symbol, byte offset, size) triples resolved
    against the symbol table.
    """
    asm = compile_source(c_source, lang=lang)
    _code, base = run_uninstrumented(asm, record_writes=True)

    plan = None
    if plan_factory is not None:
        plan = plan_factory(asm)
    session = DebugSession.from_asm(asm, strategy=strategy, plan=plan)
    symtab = session.program.symtab
    regions = []
    for name, offset, size in region_specs:
        entry = symtab.lookup(name)
        regions.append((entry.address + offset, size))
    session.mrs.enable()
    for start, size in regions:
        session.mrs.create_region(start, size)
    exit_code = session.run()
    assert exit_code == 0
    assert session.output == base.output

    expected = oracle_hits(base.cpu.write_trace, regions)
    got = [(addr, size) for addr, size, _read in session.mrs.hits]
    assert got == expected, (
        "strategy %s: %d hits, expected %d" %
        (strategy, len(got), len(expected)))
    return session
