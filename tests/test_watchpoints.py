"""Predicate watchpoints: compiler, engine, transition oracle, replay
and wire-protocol integration.

The ISSUE acceptance criteria exercised here:

* a transition watchpoint fires exactly on truth-value edges, checked
  against a brute-force per-step oracle that recomputes the predicate
  on every recorded write (small program and a §6 workload region);
* ``reverse_continue`` lands on the same firing instruction
  deterministically, for conditional and transition watchpoints;
* predicate runtime errors (bad deref, division by zero) disarm the
  watchpoint instead of crashing the session;
* protocol v4: ``accessTypes`` includes ``readWrite`` under
  ``monitorReads``, unsupported ``accessType`` values and predicates
  referencing undefined symbols are rejected with structured errors at
  ``setDataBreakpoints`` time.
"""

import pytest

from repro.debugger import Debugger
from repro.debugger.debugger import DebuggerError
from repro.errors import PredicateCompileError, PredicateError
from repro.server import DebugClient, DebugServer, ServerConfig
from repro.watchpoints import (EDGES, EvalContext,
                               WatchStats, access_allows,
                               compile_predicate, condition_to_expr,
                               edge_fires)

SOURCE = """
int g;
int limit;
int main() {
    register int i;
    limit = 10;
    for (i = 0; i < 24; i = i + 1) {
        g = (i * 13) & 15;
    }
    print(g);
    return 0;
}
"""

#: the values main() stores into g, in order
G_VALUES = [(i * 13) & 15 for i in range(24)]


def evaluate(source, **ctx):
    predicate = compile_predicate(source)
    return predicate.evaluate(EvalContext(**ctx))


# -- the predicate compiler ---------------------------------------------------

class TestPredicateCompiler:
    def test_specials_and_comparisons(self):
        assert evaluate("$value > 100", value=105) == 1
        assert evaluate("$value > 100", value=100) == 0
        assert evaluate("$old != $value", value=3, old=4) == 1
        assert evaluate("$addr + $size", addr=0x100, size=4) == 0x104

    def test_c_division_truncates_toward_zero(self):
        assert evaluate("-7 / 2") == -3
        assert evaluate("-7 % 2") == -1
        assert evaluate("7 / -2") == -3

    def test_arithmetic_wraps_to_32_bits(self):
        assert evaluate("2147483647 + 1") == -2147483648
        assert evaluate("$value * 2", value=0x40000000) == -2147483648

    def test_bitwise_shift_and_logic(self):
        assert evaluate("($value & 0xF0) >> 4", value=0xAB) == 0xA
        assert evaluate("1 << 31") == -2147483648
        # arithmetic right shift of a negative value
        assert evaluate("$value >> 1", value=-8) == -4
        assert evaluate("$value > 1 && $value < 5", value=3) == 1
        assert evaluate("$value < 1 || $value > 5", value=3) == 0

    def test_constant_folding_marks_const(self):
        predicate = compile_predicate("3 * 4 > 10")
        assert predicate.const == 1
        assert predicate.deps == frozenset()
        live = compile_predicate("$value > 10")
        assert live.const is None
        assert live.deps == frozenset({"value"})

    def test_short_circuit_folds_dead_branches(self):
        # `0 && <anything>` is false without evaluating the right side
        predicate = compile_predicate("0 && $value / 0")
        assert predicate.const == 0

    def test_unknown_special_is_a_compile_error(self):
        with pytest.raises(PredicateCompileError) as excinfo:
            compile_predicate("$bogus > 1")
        assert excinfo.value.token == "$bogus"

    def test_undefined_symbol_is_a_compile_error(self):
        with pytest.raises(PredicateCompileError) as excinfo:
            compile_predicate("$value > no_such_global")
        assert excinfo.value.token == "no_such_global"

    def test_division_by_zero_is_a_runtime_predicate_error(self):
        predicate = compile_predicate("100 / $value")
        with pytest.raises(PredicateError) as excinfo:
            predicate.evaluate(EvalContext(value=0))
        assert excinfo.value.reason == "div_zero"

    def test_condition_to_expr_desugars_legacy_dialect(self):
        assert condition_to_expr(">= 100") == "$value >= 100"
        assert condition_to_expr("== -3") == "$value == -3"
        # anything else is already a predicate expression
        assert condition_to_expr("$value > limit") == "$value > limit"

    def test_calls_and_strings_rejected(self):
        with pytest.raises(PredicateCompileError):
            compile_predicate("foo() > 1")
        with pytest.raises(PredicateCompileError):
            compile_predicate('"text"')


class TestEngineHelpers:
    def test_edge_fires_truth_table(self):
        assert edge_fires("rise", False, True)
        assert not edge_fires("rise", True, True)
        assert not edge_fires("rise", True, False)
        assert edge_fires("fall", True, False)
        assert not edge_fires("fall", False, False)
        assert edge_fires("change", False, True)
        assert edge_fires("change", True, False)
        assert not edge_fires("change", True, True)

    def test_access_allows(self):
        assert access_allows(None, True) and access_allows(None, False)
        assert access_allows("readWrite", True)
        assert access_allows("read", True)
        assert not access_allows("read", False)
        assert access_allows("write", False)
        assert not access_allows("write", True)

    def test_watch_stats_round_trip(self):
        stats = WatchStats(5, 4, 3, 2, 1, 0)
        assert WatchStats.from_tuple(stats.as_tuple()).as_tuple() \
            == stats.as_tuple()
        assert stats.as_dict()["hits"] == 5


# -- debugger-level semantics -------------------------------------------------

class TestConditionalWatchpoints:
    def test_predicate_filters_hits(self):
        debugger = Debugger.for_source(SOURCE)
        watchpoint = debugger.watch("g", action="log",
                                    expr="$value > 9")
        assert debugger.run() == "exited"
        expected = [value for value in G_VALUES if value > 9]
        assert [value for _a, _s, value in watchpoint.hits] == expected
        assert watchpoint.stats.evals == len(G_VALUES)
        assert watchpoint.stats.suppressed \
            == len(G_VALUES) - len(expected)
        assert watchpoint.kind == "conditional"

    def test_old_value_available(self):
        debugger = Debugger.for_source(SOURCE)
        watchpoint = debugger.watch("g", action="log",
                                    expr="$value - $old > 9")
        assert debugger.run() == "exited"
        previous = [0] + G_VALUES[:-1]
        expected = [new for old, new in zip(previous, G_VALUES)
                    if new - old > 9]
        assert [value for _a, _s, value in watchpoint.hits] == expected

    def test_predicate_can_read_globals(self):
        debugger = Debugger.for_source(SOURCE)
        watchpoint = debugger.watch("g", action="log",
                                    expr="$value > limit")
        assert debugger.run() == "exited"
        # limit is 10 by the time g is first written
        expected = [value for value in G_VALUES if value > 10]
        assert [value for _a, _s, value in watchpoint.hits] == expected

    def test_bad_edge_and_missing_predicate_rejected(self):
        debugger = Debugger.for_source(SOURCE)
        with pytest.raises(DebuggerError):
            debugger.watch("g", when="sideways", expr="$value")
        with pytest.raises(DebuggerError):
            debugger.watch("g", when="rise")
        with pytest.raises(DebuggerError):
            debugger.watch("g", access="sometimes")
        assert debugger.watchpoints == []

    def test_bad_predicate_leaves_nothing_armed(self):
        debugger = Debugger.for_source(SOURCE)
        with pytest.raises(PredicateCompileError):
            debugger.watch("g", expr="$value > no_such_symbol")
        assert debugger.watchpoints == []
        assert debugger.run() == "exited"


class TestDisarmSemantics:
    def test_runtime_error_disarms_not_crashes(self):
        debugger = Debugger.for_source(SOURCE)
        # faults as soon as g == 0 lands (the first write)
        watchpoint = debugger.watch("g", action="log",
                                    expr="100 / $value > 3")
        assert debugger.run() == "exited"
        assert watchpoint.disarm_error is not None
        assert watchpoint.disarm_error.reason == "div_zero"
        assert watchpoint.enabled is False
        assert watchpoint.stats.errors == 1
        assert any("disarmed" in line for line in debugger.log)

    def test_arm_time_fault_rolls_back(self):
        debugger = Debugger.for_source(SOURCE)
        # g is 0 before the program runs, so seeding the transition
        # truth divides by zero at arm time
        with pytest.raises(PredicateError):
            debugger.watch("g", expr="100 / $value > 3", when="rise")
        assert debugger.watchpoints == []


# -- transition semantics vs. a brute-force oracle ----------------------------

def brute_force_edges(seed_truth, truths, when):
    """Per-step oracle: indices where the edge fires, recomputed from
    scratch (no shared code with the engine's edge logic)."""
    fires = []
    previous = seed_truth
    for index, current in enumerate(truths):
        if when == "rise":
            fired = current and not previous
        elif when == "fall":
            fired = previous and not current
        else:
            fired = current != previous
        if fired:
            fires.append(index)
        previous = current
    return fires


class TestTransitionOracle:
    @pytest.mark.parametrize("when", EDGES)
    def test_fires_exactly_on_edges(self, when):
        debugger = Debugger.for_source(SOURCE)
        watchpoint = debugger.watch("g", action="log",
                                    expr="$value > 9", when=when)
        # seeded from current memory: g is 0 at arm time
        assert watchpoint.truth is False
        assert debugger.run() == "exited"
        truths = [value > 9 for value in G_VALUES]
        expected = brute_force_edges(False, truths, when)
        assert [value for _a, _s, value in watchpoint.hits] \
            == [G_VALUES[i] for i in expected]
        assert watchpoint.stats.fired == len(expected)
        assert watchpoint.kind == "transition"

    @pytest.mark.parametrize("when", EDGES)
    def test_workload_region_matches_oracle(self, when):
        """The acceptance criterion, on a real §6 workload: eqntott's
        PRNG seed churns pseudo-randomly, so the predicate's truth
        value flips many times over the run."""
        from repro.workloads import WORKLOADS, workload_source

        source = workload_source("023.eqntott", 0.1)
        lang = WORKLOADS["023.eqntott"].lang
        predicate = "($value & 12) == 8"

        plain = Debugger.for_source(source, lang=lang)
        seed0 = plain.evaluate("__seed")[2]
        probe = plain.watch("__seed", action="log")
        assert plain.run() == "exited"
        values = [value for _a, _s, value in probe.hits]
        assert len(values) > 10  # the oracle needs real churn

        transition = Debugger.for_source(source, lang=lang)
        watchpoint = transition.watch("__seed", action="log",
                                      expr=predicate, when=when)
        assert transition.run() == "exited"

        truths = [(value & 12) == 8 for value in values]
        expected = brute_force_edges((seed0 & 12) == 8, truths, when)
        assert [value for _a, _s, value in watchpoint.hits] \
            == [values[i] for i in expected]


# -- replay: reverse-continue lands on predicate firings ----------------------

class TestReverseContinuePredicate:
    def run_recorded(self, **watch_kwargs):
        debugger = Debugger.for_source(SOURCE)
        watchpoint = debugger.watch("g", action="stop", **watch_kwargs)
        debugger.record(stride=200)
        reason = debugger.run()
        stops = []
        while reason != "exited":
            if reason == "watch":
                stops.append(debugger.cpu.instructions)
            reason = debugger.run()
        return debugger, watchpoint, stops

    def test_reverse_lands_on_last_transition_firing(self):
        debugger, watchpoint, stops = self.run_recorded(
            expr="$value > 9", when="rise")
        assert stops  # the forward run did stop at least once
        assert debugger.reverse_continue() == "watch"
        assert debugger.stopped_watch is watchpoint
        assert debugger.cpu.instructions == stops[-1]
        # walking further back visits earlier firings, newest first
        for earlier in reversed(stops[:-1]):
            assert debugger.reverse_continue() == "watch"
            assert debugger.cpu.instructions == earlier
        assert debugger.reverse_continue() == "replay-start"

    def test_reverse_is_deterministic_across_runs(self):
        landings = []
        for _ in range(2):
            debugger, _watchpoint, stops = self.run_recorded(
                expr="$value > 9", when="change")
            assert debugger.reverse_continue() == "watch"
            landings.append((debugger.cpu.instructions, stops[-1]))
        assert landings[0] == landings[1]
        assert landings[0][0] == landings[0][1]

    def test_conditional_reverse_skips_suppressed_writes(self):
        debugger, watchpoint, stops = self.run_recorded(
            expr="$value == 14")
        assert G_VALUES.count(14) == len(stops)
        assert debugger.reverse_continue() == "watch"
        assert debugger.cpu.instructions == stops[-1]
        assert debugger.evaluate("g")[2] == 14


# -- protocol v4 --------------------------------------------------------------

@pytest.fixture
def server():
    instance = DebugServer(config=ServerConfig(max_sessions=8,
                                               workers=4)).start()
    yield instance
    instance.close(drain=False, timeout=2.0)


def client_for(server, timeout=15.0):
    return DebugClient(port=server.port, timeout=timeout)


def run_to_exit(client, session_id):
    stop = client.cont(session_id)
    while not stop.get("exited"):
        stop = client.cont(session_id)
    return stop


class TestWireProtocolV4:
    def test_capabilities_advertise_predicates(self, server):
        with client_for(server) as client:
            negotiated = client.initialize()
            assert negotiated["protocolVersion"] == 4
            capabilities = negotiated["capabilities"]
            assert capabilities["supportsConditionalDataBreakpoints"] \
                is True
            assert capabilities["supportsPredicateConditions"] is True
            assert capabilities["supportsTransitionDataBreakpoints"] \
                is True
            assert capabilities["predicateSpecials"] == \
                ["$value", "$old", "$addr", "$size"]
            assert capabilities["transitionEdges"] == list(EDGES)

    def test_access_types_follow_monitor_reads(self, server):
        with client_for(server) as client:
            client.initialize()
            plain = client.launch(SOURCE)
            info = client.data_breakpoint_info(plain, "g")
            assert info["accessTypes"] == ["write"]
            reads = client.launch(SOURCE, monitorReads=True)
            info = client.data_breakpoint_info(reads, "g")
            assert info["accessTypes"] == ["read", "write", "readWrite"]

    def test_unsupported_access_type_rejected(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE)
            info = client.data_breakpoint_info(session_id, "g")
            results = client.set_data_breakpoints(
                session_id, [{"dataId": info["dataId"],
                              "accessType": "read"}])
            assert results[0]["verified"] is False
            context = results[0]["error"]["context"]
            assert context["reason"] == "access_type"
            assert context["field"] == "accessType"
            assert context["supported"] == ["write"]
            # the rejected spec must not leave a half-armed breakpoint
            assert client.set_data_breakpoints(session_id, []) == []

    def test_invalid_condition_rejected_with_token(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE)
            info = client.data_breakpoint_info(session_id, "g")
            results = client.set_data_breakpoints(
                session_id,
                [{"dataId": info["dataId"],
                  "condition": "$value > undefined_sym"}])
            assert results[0]["verified"] is False
            context = results[0]["error"]["context"]
            assert context["reason"] == "invalid_condition"
            assert context["field"] == "condition"
            assert context["token"] == "undefined_sym"
            assert context["condition"] == "$value > undefined_sym"

    def test_transition_fires_once_over_the_wire(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE)
            info = client.data_breakpoint_info(session_id, "g")
            results = client.set_data_breakpoints(
                session_id, [{"dataId": info["dataId"], "stop": True,
                              "condition": "$value > 9",
                              "when": "rise"}])
            assert results[0]["verified"] is True
            assert results[0]["kind"] == "transition"
            rises = brute_force_edges(
                False, [value > 9 for value in G_VALUES], "rise")
            stops = []
            stop = client.cont(session_id)
            while not stop.get("exited"):
                if stop["reason"] == "watch":
                    stops.append(stop["value"])
                stop = client.cont(session_id)
            assert stops == [G_VALUES[i] for i in rises]

    def test_legacy_condition_dialect_still_works(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(SOURCE)
            info = client.data_breakpoint_info(session_id, "g")
            results = client.set_data_breakpoints(
                session_id, [{"dataId": info["dataId"], "stop": True,
                              "condition": "== 14"}])
            assert results[0]["verified"] is True
            stop = client.cont(session_id)
            assert stop["reason"] == "watch"
            assert stop["value"] == 14
            run_to_exit(client, session_id)
