"""Tests for the mini-C compiler: front end and execution semantics."""

import pytest

from repro.minic import CompileError, compile_and_run, compile_source
from repro.minic.cparser import parse_source
from repro.minic.lexer import tokenize


def run(body, globals_="", expect=None, lang="C"):
    source = globals_ + "\nint main() {\n" + body + "\nreturn 0;\n}\n"
    code, out, cpu = compile_and_run(source, lang=lang)
    assert code == 0
    if expect is not None:
        assert out == [str(v) for v in expect], out
    return out, cpu


class TestLexer:
    def test_tokens(self):
        kinds = [t.kind for t in tokenize("int x = 42; // hi")]
        assert kinds == ["int", "ident", "op", "num", "op", "eof"]

    def test_char_literals(self):
        tokens = tokenize("'A' '\\n'")
        assert [t.value for t in tokens[:-1]] == ["65", "10"]

    def test_block_comments_and_lines(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert tokens[1].line == 2

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("int $x;")


class TestParser:
    def test_precedence(self):
        ast = parse_source("int main() { return 1 + 2 * 3; }")
        expr = ast.functions[0].body.stmts[0].value
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_struct_definition(self):
        ast = parse_source(
            "struct p { int x; int y; }; struct p v; int main() "
            "{ return 0; }")
        assert ast.structs["p"].size == 8
        assert ast.structs["p"].field_offset("y") == 4

    def test_2d_array_row_major(self):
        ast = parse_source("int a[2][3]; int main() { return 0; }")
        array = ast.globals[0].type
        assert array.size == 24
        assert array.count == 2 and array.elem.count == 3

    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse_source("int main() { return 1 }")

    def test_unknown_struct(self):
        with pytest.raises(CompileError):
            parse_source("struct nope v; int main() { return 0; }")

    def test_assignment_requires_lvalue(self):
        with pytest.raises(CompileError):
            parse_source("int main() { 1 + 2 = 3; return 0; }")


class TestArithmetic:
    @pytest.mark.parametrize("expr,value", [
        ("7 + 3", 10), ("7 - 10", -3), ("6 * 7", 42),
        ("43 / 6", 7), ("-43 / 6", -7), ("43 % 6", 1),
        ("1 << 10", 1024), ("-64 >> 3", -8),
        ("12 & 10", 8), ("12 | 3", 15), ("12 ^ 10", 6),
        ("~0", -1), ("-(5)", -5), ("!0", 1), ("!7", 0),
        ("(2 + 3) * 4", 20), ("2 + 3 * 4", 14),
        ("1 < 2", 1), ("2 <= 1", 0), ("3 == 3", 1), ("3 != 3", 0),
        ("1 && 2", 1), ("1 && 0", 0), ("0 || 3", 1), ("0 || 0", 0),
    ])
    def test_expression(self, expr, value):
        run("print(%s);" % expr, expect=[value])

    def test_large_constants(self):
        run("print(1103515245);", expect=[1103515245])
        run("print(0 - 1073741824);", expect=[-1073741824])

    def test_short_circuit_skips_side_effect(self):
        out, _ = run("""
            int divisor;
            divisor = 0;
            if (divisor != 0 && 100 / divisor > 1) { print(1); }
            else { print(2); }
        """, expect=[2])


class TestControlFlow:
    def test_if_else_chain(self):
        run("""
            int x;
            x = 7;
            if (x < 5) { print(1); }
            else if (x < 10) { print(2); }
            else { print(3); }
        """, expect=[2])

    def test_while_and_break_continue(self):
        run("""
            int i;
            int s;
            s = 0;
            i = 0;
            while (1) {
                i = i + 1;
                if (i > 10) break;
                if (i % 2) continue;
                s = s + i;
            }
            print(s);
        """, expect=[30])

    def test_for_with_empty_parts(self):
        run("""
            int i;
            int s;
            s = 0;
            for (i = 0; ; i = i + 1) {
                if (i >= 5) break;
                s = s + i;
            }
            print(s);
        """, expect=[10])

    def test_nested_loops(self):
        run("""
            int i; int j; int s;
            s = 0;
            for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) {
                    if (i == j) continue;
                    s = s + 1;
                }
            }
            print(s);
        """, expect=[12])


class TestDataStructures:
    def test_global_array_init(self):
        run("print(t[0] + t[2]);", globals_="int t[3] = {5, 6, 7};",
            expect=[12])

    def test_local_array(self):
        run("""
            int a[6];
            register int i;
            for (i = 0; i < 6; i = i + 1) { a[i] = i * i; }
            print(a[5]);
        """, expect=[25])

    def test_2d_array_indexing(self):
        run("""
            register int i;
            register int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) { m[i][j] = i * 10 + j; }
            }
            print(m[2][3]);
            print(m[0][1]);
        """, globals_="int m[3][4];", expect=[23, 1])

    def test_struct_fields_and_arrow(self):
        run("""
            struct pair local;
            struct pair *p;
            local.a = 3;
            local.b = 4;
            p = &local;
            p->a = p->a + p->b;
            print(local.a);
        """, globals_="struct pair { int a; int b; };", expect=[7])

    def test_pointer_arithmetic_scaling(self):
        run("""
            int *p;
            p = &buf[0];
            *(p + 2) = 50;
            print(buf[2]);
            p = p + 1;
            *p = 9;
            print(buf[1]);
        """, globals_="int buf[4];", expect=[50, 9])

    def test_pointer_to_pointer(self):
        run("""
            int x;
            int *p;
            int **pp;
            x = 5;
            p = &x;
            pp = &p;
            **pp = 11;
            print(x);
        """, expect=[11])

    def test_address_of_array_element(self):
        run("""
            int *p;
            p = &buf[3];
            *p = 77;
            print(buf[3]);
        """, globals_="int buf[8];", expect=[77])

    def test_byte_heap_via_sbrk(self):
        run("""
            int *p;
            p = sbrk(16);
            p[0] = 1;
            p[3] = 4;
            print(p[0] + p[3]);
        """, expect=[5])


class TestFunctions:
    def test_recursion(self):
        source = """
        int fact(int n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
        }
        int main() { print(fact(7)); return 0; }
        """
        _code, out, _cpu = compile_and_run(source)
        assert out == ["5040"]

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        int is_even(int n) {
            if (n == 0) return 1;
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) return 0;
            return is_even(n - 1);
        }
        int main() { print(is_even(10)); print(is_odd(10)); return 0; }
        """
        # forward declarations are not supported; reorder instead
        source = """
        int helper(int n, int odd) {
            if (n == 0) return odd;
            return helper(n - 1, 1 - odd);
        }
        int main() { print(helper(10, 0)); return 0; }
        """
        _code, out, _cpu = compile_and_run(source)
        assert out == ["0"]

    def test_six_arguments(self):
        source = """
        int sum6(int a, int b, int c, int d, int e, int f) {
            return a + b + c + d + e + f;
        }
        int main() { print(sum6(1, 2, 3, 4, 5, 6)); return 0; }
        """
        _code, out, _cpu = compile_and_run(source)
        assert out == ["21"]

    def test_register_parameters(self):
        source = """
        int dot(register int a, register int b) { return a * b; }
        int main() { print(dot(6, 7)); return 0; }
        """
        _code, out, _cpu = compile_and_run(source)
        assert out == ["42"]

    def test_exit_code_from_main(self):
        code, _out, _cpu = compile_and_run("int main() { return 5; }")
        assert code == 5


class TestCodegenProperties:
    def test_register_vars_generate_no_memory_writes(self):
        source = """
        int main() {
            register int i;
            register int s;
            s = 0;
            for (i = 0; i < 100; i = i + 1) { s = s + i; }
            print(s);
            return 0;
        }
        """
        _code, out, cpu = compile_and_run(source, record_writes=True)
        assert out == ["4950"]
        assert len(cpu.write_trace) == 0

    def test_memory_vars_generate_writes(self):
        source = """
        int main() {
            int i;
            i = 0;
            i = i + 1;
            print(i);
            return 0;
        }
        """
        _code, _out, cpu = compile_and_run(source, record_writes=True)
        assert len(cpu.write_trace) == 2

    def test_stabs_emitted_for_all_variables(self):
        asm = compile_source("""
        int g;
        int arr[10];
        int f(int p) {
            int local;
            register int r;
            local = p;
            r = 1;
            return local + r;
        }
        int main() { return f(1); }
        """)
        assert '.stabs "g", global' in asm
        assert '.stabs "arr", global' in asm and ", 40, 4" in asm
        assert '.stabs "p", param' in asm
        assert '.stabs "local", local' in asm
        assert '.stabs "r", register' in asm

    def test_lang_directive(self):
        asm = compile_source("int main() { return 0; }", lang="F")
        assert ".lang F" in asm


class TestCompileErrors:
    @pytest.mark.parametrize("source", [
        "int main() { undefined = 1; return 0; }",
        "int main() { int x; return y; }",
        "int main() { return missing(); }",
        "int f() { return 0; }",                      # no main
        "int main() { register int r; return &r; }",  # address of register
        "int main() { int x; x.field = 1; return 0; }",
        "int main() { int x; return x[0]; }",
        "int main() { break; }",
    ])
    def test_rejected(self, source):
        with pytest.raises(CompileError):
            compile_source(source)

    def test_frame_too_large(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int big[2000]; return 0; }")
