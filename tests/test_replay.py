"""Time-travel record/replay: determinism, reverse execution,
last-write queries, divergence detection and fault injection.

The ISSUE acceptance criteria exercised here:

* ``reverse_continue`` stops at the most recent write to a monitored
  region; ``last_write`` returns (pc, instruction index, old/new value);
* recording a workload twice from the same seed yields byte-identical
  write-traces;
* ``last_write_to`` agrees with a brute-force forward scan;
* divergence raises :class:`DivergenceError`, never a silent wrong
  answer;
* a ``replay.keyframe`` injection fault degrades the recording (the
  keyframe is skipped and counted) but never publishes a torn keyframe.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.debugger import Debugger
from repro.errors import DivergenceError, ReplayError
from repro.faults import REPLAY_KEYFRAME, FaultPlan
from repro.replay import WriteRecord, WriteTrace, state_digest
from repro.session import DebugSession

SOURCE = """
int total;
int grid[8];

int bump(int k) {
    total = total + k;
    return total;
}

int main() {
    register int i;
    for (i = 0; i < 6; i = i + 1) {
        bump(i);
        grid[i] = total;
    }
    print(total);
    return 0;
}
"""

#: total after each loop iteration (running sum of 0..5)
TOTALS = [0, 1, 3, 6, 10, 15]


def make_debugger(source=SOURCE, faults=None):
    if faults is not None:
        session = DebugSession.from_minic(source, faults=faults)
        return Debugger(session)
    return Debugger.for_source(source, optimize="full")


def value_of(debugger, expression):
    _entry, _addr, value = debugger.evaluate(expression)
    return value


def record_run(stride=200, faults=None, watches=("total",),
               action="log", **record_options):
    debugger = make_debugger(faults=faults)
    watchpoints = {expr: debugger.watch(expr, action=action)
                   for expr in watches}
    recorder = debugger.record(stride=stride, **record_options)
    reason = debugger.run()
    while reason != "exited":
        reason = debugger.run()
    return debugger, recorder, watchpoints


class TestWriteTrace:
    def test_record_round_trips_through_bytes(self):
        record = WriteRecord(12345, 0x10214, 0x10004000, 4, 7, 9, False)
        assert WriteRecord.unpack(record.pack()) == record
        assert record.stop_index == 12346
        assert record.overlaps(0x10004000, 4)
        assert record.overlaps(0x10003FFD, 4)
        assert not record.overlaps(0x10004004, 4)

    def test_trace_round_trips_and_digest_is_canonical(self):
        trace = WriteTrace(max_records=16)
        for index in range(5):
            trace.append(WriteRecord(index * 10, 0x100, 0x200 + index,
                                     4, index, index + 1, False))
        clone = WriteTrace.from_bytes(trace.to_bytes())
        assert list(clone) == list(trace)
        assert clone.base == trace.base
        assert clone.digest() == trace.digest()

    def test_ring_eviction_keeps_absolute_positions(self):
        trace = WriteTrace(max_records=3)
        for index in range(7):
            trace.append(WriteRecord(index, 0, 0, 4, 0, index, False))
        assert len(trace) == 3
        assert trace.dropped == 4
        assert trace.at(3) is None            # evicted
        assert trace.at(4).new == 4           # oldest survivor
        assert trace.at(6).new == 6
        assert trace.at(7) is None            # not yet written

    def test_last_write_to_respects_before_index(self):
        trace = WriteTrace()
        trace.append(WriteRecord(10, 0, 0x100, 4, 0, 1, False))
        trace.append(WriteRecord(20, 0, 0x100, 4, 1, 2, False))
        trace.append(WriteRecord(30, 0, 0x100, 4, 2, 3, True))  # a read
        assert trace.last_write_to(0x100, 4).new == 2
        # stop_index (index+1) is the comparison point
        assert trace.last_write_to(0x100, 4, before_index=21).new == 2
        assert trace.last_write_to(0x100, 4, before_index=20).new == 1
        assert trace.last_write_to(0x100, 4, before_index=10) is None
        assert trace.last_write_to(0x500, 4) is None

    def test_truncate_drops_the_future(self):
        trace = WriteTrace()
        for index in range(4):
            trace.append(WriteRecord(index, 0, 0x100, 4, 0, index, False))
        trace.truncate(2)
        assert len(trace) == 2
        assert trace.at(1).new == 1
        assert trace.at(2) is None


class TestReverseExecution:
    def test_reverse_continue_stops_at_most_recent_write(self):
        debugger, recorder, watchpoints = record_run()
        watchpoint = watchpoints["total"]
        # walking backwards visits every recorded write, newest first
        for expected in reversed(TOTALS):
            assert debugger.reverse_continue() == "watch"
            assert debugger.stop_reason == "watch"
            assert debugger.stopped_watch is watchpoint
            assert value_of(debugger, "total") == expected
        assert debugger.reverse_continue() == "replay-start"
        assert debugger.cpu.instructions == recorder.start_index

    def test_reverse_step_lands_exactly_n_back(self):
        debugger, _recorder, _w = record_run()
        end = debugger.cpu.instructions
        assert debugger.reverse_step(10) == "step"
        assert debugger.cpu.instructions == end - 10
        assert debugger.reverse_step() == "step"
        assert debugger.cpu.instructions == end - 11
        # clamped at the start of the recording
        assert debugger.reverse_step(10 ** 9) == "replay-start"
        assert debugger.cpu.instructions == 0

    def test_forward_resume_after_travel_reaches_same_end(self):
        debugger, recorder, _w = record_run()
        end = debugger.cpu.instructions
        end_digest = state_digest(debugger.cpu)
        output = list(debugger.output)
        debugger.reverse_continue()
        debugger.reverse_continue()
        assert debugger.run() == "exited"
        assert debugger.cpu.instructions == end
        assert state_digest(debugger.cpu) == end_digest
        assert list(debugger.output) == output
        assert recorder.mode == "record"

    def test_reverse_continue_skips_unwatched_writes(self):
        # grid is written 6 times but never watched: reverse_continue
        # must ignore it and walk total's writes only
        debugger, _recorder, watchpoints = record_run()
        assert debugger.reverse_continue() == "watch"
        assert debugger.stopped_watch is watchpoints["total"]

    def test_requires_a_recording(self):
        debugger = make_debugger()
        debugger.watch("total", action="log")
        with pytest.raises(ReplayError) as excinfo:
            debugger.reverse_continue()
        assert excinfo.value.context["reason"] == "not_recording"
        with pytest.raises(ReplayError):
            debugger.reverse_step()
        with pytest.raises(ReplayError):
            debugger.last_write("total")

    def test_watch_change_while_travelled_forks_the_timeline(self):
        debugger, recorder, _w = record_run()
        end = recorder.end_index
        debugger.reverse_continue()
        here = debugger.cpu.instructions
        debugger.watch("grid[5]", action="log")
        # the stale future (recorded under the old monitor set) is gone
        assert recorder.end_index == here
        assert all(record.stop_index <= here
                   for record in recorder.trace)
        # ... and the forked timeline records and completes normally
        assert debugger.run() == "exited"
        assert recorder.end_index >= end
        answer = debugger.last_write("grid[5]")
        assert answer is not None and answer.new == 15


class TestLastWrite:
    def test_last_write_from_trace(self):
        debugger, _recorder, _w = record_run()
        answer = debugger.last_write("total")
        assert answer.source == "trace"
        assert (answer.old, answer.new) == (10, 15)
        assert answer.pc >= 0x10000
        assert 0 < answer.index < debugger.cpu.instructions

    def test_last_write_scan_for_unmonitored_region(self):
        debugger, _recorder, _w = record_run()
        answer = debugger.last_write("grid[3]")
        assert answer.source == "scan"
        assert (answer.old, answer.new) == (0, 6)

    def test_scan_agrees_with_brute_force_trace(self):
        """The re-execution scan must agree with a recording where the
        region was monitored (= brute-force forward scan) all along."""
        scanned, _r, _w = record_run(watches=("total",))
        brute, _r2, _w2 = record_run(watches=("total", "grid[4]"))
        for expression in ("grid[4]",):
            from_scan = scanned.last_write(expression)
            from_trace = brute.last_write(expression)
            assert from_scan.source == "scan"
            assert from_trace.source == "trace"
            assert (from_scan.pc, from_scan.index, from_scan.old,
                    from_scan.new, from_scan.addr, from_scan.size) == \
                   (from_trace.pc, from_trace.index, from_trace.old,
                    from_trace.new, from_trace.addr, from_trace.size)

    def test_scan_answers_as_of_the_travelled_point(self):
        debugger, _recorder, _w = record_run()
        debugger.reverse_continue()   # before total's final write
        answer = debugger.last_write("grid[3]")
        assert answer is not None     # grid[3] written earlier still
        debugger.reverse_step(debugger.cpu.instructions - 1)
        # near the start nothing has touched grid yet
        assert debugger.last_write("grid[3]") is None

    def test_scan_does_not_perturb_the_present(self):
        debugger, recorder, _w = record_run()
        digest = state_digest(debugger.cpu)
        watch_count = len(debugger.watchpoints)
        trace_bytes = recorder.trace.to_bytes()
        debugger.last_write("grid[2]")
        assert state_digest(debugger.cpu) == digest
        assert len(debugger.watchpoints) == watch_count
        assert recorder.trace.to_bytes() == trace_bytes
        assert recorder.mode == "record"

    def test_never_written_is_none_not_a_guess(self):
        debugger, _recorder, _w = record_run(watches=("total", "grid[7]"))
        # grid[7] is monitored for the whole run and never written
        # (the loop stops at i == 5)
        assert debugger.last_write("grid[7]") is None


class TestDeterminism:
    def test_same_program_records_identical_traces(self):
        _d1, first, _w1 = record_run()
        _d2, second, _w2 = record_run()
        assert first.trace.to_bytes() == second.trace.to_bytes()
        assert first.trace.digest() == second.trace.digest()

    def test_trace_is_stride_invariant(self):
        # keyframe cadence is bookkeeping, not semantics
        _d1, first, _w1 = record_run(stride=97)
        _d2, second, _w2 = record_run(stride=2000)
        assert first.trace.to_bytes() == second.trace.to_bytes()

    @given(seed=st.integers(min_value=0, max_value=2 ** 31),
           stride=st.integers(min_value=50, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_seeded_workload_replays_byte_identical(self, seed, stride):
        source = """
        int cells[16];
        int state;
        int step() {
            state = (state * 69069 + 12345) % 2048;
            cells[state % 16] = state;
            return state;
        }
        int main() {
            register int i;
            state = SEED;
            for (i = 0; i < 12; i = i + 1) step();
            print(state);
            return 0;
        }
        """.replace("SEED", str(seed % 2048))
        traces = []
        for _ in range(2):
            debugger = Debugger.for_source(source, optimize="full")
            debugger.watch("state", action="log")
            debugger.watch("cells", action="log")
            recorder = debugger.record(stride=stride)
            reason = debugger.run()
            while reason != "exited":
                reason = debugger.run()
            traces.append(recorder.trace.to_bytes())
        assert traces[0] == traces[1]


class TestDivergenceDetection:
    def test_tampered_trace_raises_divergence_error(self):
        debugger, recorder, _w = record_run()
        position = recorder.trace.total - 2
        genuine = recorder.trace.at(position)
        recorder.trace.replace(position,
                               genuine._replace(new=genuine.new ^ 0xFF))
        with pytest.raises(DivergenceError) as excinfo:
            for _ in range(len(TOTALS) + 1):
                debugger.reverse_continue()
        assert excinfo.value.expected["new"] != \
            excinfo.value.observed["new"]
        assert excinfo.value.observed["new"] == genuine.new

    def test_tampered_keyframe_digest_raises_divergence_error(self):
        debugger, recorder, _w = record_run(stride=100)
        assert len(recorder.keyframes) > 2
        tampered = recorder.keyframes[1]
        tampered.digest ^= 0xDEAD
        back_to_keyframe = debugger.cpu.instructions - tampered.index
        with pytest.raises(DivergenceError) as excinfo:
            debugger.reverse_step(back_to_keyframe)
        assert "expected_digest" in excinfo.value.context

    def test_divergence_error_carries_expected_and_observed(self):
        error = DivergenceError("drift", expected_pc=1, observed_pc=2,
                                index=7)
        assert error.expected == {"pc": 1}
        assert error.observed == {"pc": 2}
        assert error.context["index"] == 7


class TestKeyframeFaultInjection:
    def test_faulted_capture_skips_keyframe_but_recording_survives(self):
        plan = FaultPlan.nth(REPLAY_KEYFRAME, 1)
        debugger, recorder, _w = record_run(stride=100, faults=plan)
        assert len(recorder.capture_faults) == 1
        assert plan.fired and plan.fired[0][0] == REPLAY_KEYFRAME
        # no torn keyframes: every published keyframe restores and
        # digest-verifies
        assert recorder.keyframes
        for keyframe in list(recorder.keyframes):
            recorder.restore_keyframe(keyframe)
            recorder.check_keyframe_digest(keyframe)
        # ... and time travel still answers correctly
        assert debugger.run() == "exited"
        assert debugger.reverse_continue() == "watch"
        assert value_of(debugger, "total") == 15

    def test_every_capture_faulting_degrades_to_structured_error(self):
        plan = FaultPlan(schedule={REPLAY_KEYFRAME: True})
        debugger, recorder, _w = record_run(stride=100, faults=plan)
        assert recorder.keyframes == []
        assert len(recorder.capture_faults) >= 1
        with pytest.raises(ReplayError) as excinfo:
            debugger.reverse_continue()
        assert "capture faults" in str(excinfo.value)

    @given(seed=st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=8, deadline=None)
    def test_random_capture_faults_never_tear_a_keyframe(self, seed):
        plan = FaultPlan(seed=seed, rate=0.5, points=[REPLAY_KEYFRAME])
        debugger, recorder, _w = record_run(stride=60, faults=plan)
        assert len(recorder.capture_faults) == len(plan.fired)
        end = debugger.cpu.instructions
        end_digest = state_digest(debugger.cpu)
        try:
            reason = debugger.reverse_continue()
        except ReplayError as excinfo:
            # acceptable degradation: every keyframe capture faulted
            assert recorder.keyframes == []
            return
        assert reason in ("watch", "replay-start")
        if reason == "watch":
            assert value_of(debugger, "total") in TOTALS
        # forward replay reconverges bit-exactly on the frontier
        while debugger.cpu.instructions < end:
            assert debugger.run() == "exited"
        assert state_digest(debugger.cpu) == end_digest


class TestRecorderBounds:
    def test_keyframe_ring_thins_and_doubles_stride(self):
        debugger, recorder, _w = record_run(stride=20, max_keyframes=4)
        assert len(recorder.keyframes) <= 4
        assert recorder.stride > 20
        # history coverage: first keyframe kept, frontier kept
        assert recorder.keyframes[0].index == 0
        assert recorder.keyframes[-1].index <= recorder.end_index
        # travel to the oldest point still works
        assert debugger.reverse_step(debugger.cpu.instructions - 1) \
            == "step"
        assert debugger.cpu.instructions == 1

    def test_trace_ring_eviction_disables_only_dropped_prefix(self):
        debugger, recorder, _w = record_run(max_trace=3)
        assert recorder.trace.dropped == len(TOTALS) - 3
        # recent history still travels with full verification
        assert debugger.reverse_continue() == "watch"
        assert value_of(debugger, "total") == 15


class TestSessionRewindHooks:
    """Satellite: entry-checkpoint rewind must reset debugger and
    recorder statistics, not just machine state."""

    def test_fresh_session_run_resets_watch_hits_and_recording(self):
        debugger = make_debugger()
        watchpoint = debugger.watch("total", action="log")
        debugger.record(stride=200)
        assert debugger.run() == "exited"
        assert watchpoint.hit_count() == len(TOTALS)
        assert debugger.recording
        first = (debugger.cpu.instructions, list(debugger.output))
        # a fresh DebugSession.run() rewinds to the entry checkpoint:
        # watchpoint statistics and the recording reset with it, so the
        # re-run's hits are counted once, not stacked on the old run's
        assert debugger.session.run() == 0
        assert watchpoint.hit_count() == len(TOTALS)
        assert not debugger.recording
        assert (debugger.cpu.instructions, list(debugger.output)) \
            == first
        # stable across any number of fresh runs
        assert debugger.session.run() == 0
        assert watchpoint.hit_count() == len(TOTALS)
        assert (debugger.cpu.instructions, list(debugger.output)) \
            == first

    def test_checkpoint_round_trips_window_depth(self):
        from repro.machine.checkpoint import Checkpoint
        debugger = make_debugger()
        debugger.step(120)  # inside bump(): window depth is live
        cpu = debugger.cpu
        checkpoint = Checkpoint(cpu)
        saved = (cpu._window_depth, cpu.max_window_depth,
                 cpu.running, cpu.exit_code)
        assert debugger.run() == "exited"
        assert (cpu.running, cpu.exit_code) != (saved[2], saved[3])
        checkpoint.restore(cpu)
        assert (cpu._window_depth, cpu.max_window_depth,
                cpu.running, cpu.exit_code) == saved
