"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

PROGRAM = """
int counter;
int main() {
    counter = 1;
    counter += 41;
    print(counter);
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.c"
    path.write_text(PROGRAM)
    return str(path)


class TestRunCommand:
    def test_run_with_watch(self, source_file, capsys):
        assert main(["run", source_file, "--watch", "counter"]) == 0
        out = capsys.readouterr().out
        assert "42" in out
        assert "watch counter" in out and "2 hit(s)" in out
        assert "last value 42" in out

    def test_run_without_optimization(self, source_file, capsys):
        assert main(["run", source_file, "--optimize", "none",
                     "--strategy", "Cache", "--watch", "counter"]) == 0
        assert "2 hit(s)" in capsys.readouterr().out

    def test_stats_output(self, source_file, capsys):
        assert main(["run", source_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out and "check" in out

    def test_exit_reason_printed(self, source_file, capsys):
        main(["run", source_file])
        assert "-- exited" in capsys.readouterr().out


class TestAsmCommand:
    def test_plain_assembly(self, source_file, capsys):
        assert main(["asm", source_file]) == 0
        out = capsys.readouterr().out
        assert ".proc main" in out and ".stabs" in out

    def test_instrumented_assembly(self, source_file, capsys):
        assert main(["asm", source_file, "--instrument", "Bitmap"]) == 0
        out = capsys.readouterr().out
        assert "__mrs_check_w4" in out
        assert "! check" in out


class TestEvalCommands:
    def test_breakeven(self, capsys):
        assert main(["breakeven"]) == 0
        assert "break-even" in capsys.readouterr().out

    def test_space_small(self, capsys):
        assert main(["space", "--scale", "0.2"]) == 0
        assert "%" in capsys.readouterr().out


class TestParser:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("run", "asm", "table1", "table2", "figure3",
                        "nop", "baselines", "space", "breakeven",
                        "ablations"):
            assert command in text
