"""Tests for the monitored region service: regions, notifications,
enable/disable, segment-cache invalidation, PreMonitor/PostMonitor
patching, and space accounting."""

import pytest

from repro.core.regions import RegionError
from repro.core.runtime_asm import INVALID_SEGMENT
from repro.isa.registers import REGISTER_IDS
from repro.minic.codegen import compile_source
from repro.optimizer.pipeline import build_plan
from repro.session import DebugSession

SOURCE = """
int g;
int buf[32];

int poke(int *p, int v) {
    *p = v;
    return v;
}

int main() {
    register int i;
    g = 1;
    for (i = 0; i < 32; i = i + 1) {
        buf[i] = i;
    }
    poke(&g, 42);
    print(g);
    return 0;
}
"""


def make_session(strategy="Bitmap", plan=None, **kwargs):
    return DebugSession.from_minic(SOURCE, strategy=strategy, plan=plan,
                                   **kwargs)


class TestRegions:
    def test_create_and_hit(self):
        session = make_session()
        sym = session.symbol("g")
        session.mrs.enable()
        session.mrs.create_region(sym.address, 4)
        session.run()
        assert session.mrs.hit_count() == 2  # g=1 and poke

    def test_delete_stops_hits(self):
        session = make_session()
        sym = session.symbol("g")
        session.mrs.enable()
        region = session.mrs.create_region(sym.address, 4)
        session.mrs.delete_region(region)
        session.run()
        assert session.mrs.hit_count() == 0

    def test_overlapping_regions_rejected(self):
        session = make_session()
        sym = session.symbol("buf")
        session.mrs.create_region(sym.address, 16)
        with pytest.raises(RegionError):
            session.mrs.create_region(sym.address + 8, 16)

    def test_disabled_service_reports_nothing(self):
        session = make_session()
        sym = session.symbol("g")
        session.mrs.create_region(sym.address, 4)  # not enabled
        session.run()
        assert session.mrs.hit_count() == 0

    def test_callbacks_invoked_in_order(self):
        session = make_session()
        sym = session.symbol("buf")
        session.mrs.enable()
        session.mrs.create_region(sym.address, 8)
        seen = []
        session.mrs.add_callback(
            lambda addr, size, is_read: seen.append(addr))
        session.run()
        assert seen == [sym.address, sym.address + 4]

    def test_overhead_independent_of_region_count(self):
        # Table 1's property: more monitored regions (unwritten) do not
        # add instructions to the checks
        base = make_session(strategy="BitmapInlineRegisters")
        base.mrs.enable()
        base.run()
        many = make_session(strategy="BitmapInlineRegisters")
        many.mrs.enable()
        for k in range(8):
            many.mrs.create_region(0x60000000 + 1024 * k, 64)
        many.run()
        assert many.cpu.instructions == base.cpu.instructions


class TestSegmentCaches:
    def test_create_invalidates_matching_cache(self):
        session = make_session(strategy="Cache")
        sym = session.symbol("g")
        layout = session.mrs.layout
        segment = layout.segment_of(sym.address)
        rid = REGISTER_IDS["%m1"]
        session.cpu.regs.write(rid, segment)  # simulate a cached segment
        session.mrs.create_region(sym.address, 4)
        assert session.cpu.regs.read(rid) == INVALID_SEGMENT

    def test_create_keeps_unrelated_cache(self):
        session = make_session(strategy="Cache")
        sym = session.symbol("g")
        rid = REGISTER_IDS["%m1"]
        session.cpu.regs.write(rid, 12345)
        session.mrs.create_region(sym.address, 4)
        assert session.cpu.regs.read(rid) == 12345

    def test_cache_strategy_detects_hits_after_miss_cycle(self):
        session = make_session(strategy="CacheInline",
                               record_writes=True)
        sym = session.symbol("buf")
        session.mrs.enable()
        session.mrs.create_region(sym.address + 16, 8)  # buf[4], buf[5]
        session.run()
        assert session.mrs.hit_count() == 2


class TestPreMonitor:
    def _optimized_session(self):
        asm = compile_source(SOURCE)
        _stmts, plan = build_plan(asm, mode="full")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        return session, plan

    def test_eliminated_sites_unchecked_without_premonitor(self):
        session, plan = self._optimized_session()
        sym = session.symbol("g")
        session.mrs.enable()
        # create region only: known writes to g are NOT patched, so the
        # direct writes are missed (aliased poke() write is still seen)
        session.mrs.create_region(sym.address, 4)
        session.run()
        assert session.mrs.hit_count() == 1

    def test_premonitor_restores_known_write_checks(self):
        session, plan = self._optimized_session()
        sym = session.symbol("g")
        session.mrs.enable()
        patched = session.mrs.pre_monitor("g")
        assert patched >= 1
        session.mrs.create_region(sym.address, 4)
        session.run()
        assert session.mrs.hit_count() == 2

    def test_postmonitor_reverses_patching(self):
        session, plan = self._optimized_session()
        session.mrs.pre_monitor("g")
        assert session.mrs.active_sites()
        session.mrs.post_monitor("g")
        assert not session.mrs.active_sites()

    def test_nested_activation_refcounts(self):
        session, plan = self._optimized_session()
        session.mrs.pre_monitor("g")
        session.mrs.pre_monitor("g")
        session.mrs.post_monitor("g")
        assert session.mrs.active_sites()  # second reference keeps it
        session.mrs.post_monitor("g")
        assert not session.mrs.active_sites()

    def test_patch_restores_original_instruction(self):
        session, plan = self._optimized_session()
        info = next(iter(session.mrs.inst.patchable.values()))
        original = session.cpu.code.at(info.addr)
        session.mrs._activate(info.site, "symbol")
        assert session.cpu.code.at(info.addr) is not original
        session.mrs._deactivate(info.site, "symbol")
        assert session.cpu.code.at(info.addr) is original


class TestIdempotency:
    """Delete/disable misuse gets clear errors or no-ops, never
    corrupted bookkeeping."""

    def test_delete_unknown_region_raises_region_error(self):
        from repro.core.regions import MonitoredRegion
        session = make_session()
        ghost = MonitoredRegion(0x60000000, 16)
        with pytest.raises(RegionError) as excinfo:
            session.mrs.delete_region(ghost)
        assert "not currently monitored" in str(excinfo.value)
        assert excinfo.value.context["region"] == (0x60000000, 16)

    def test_double_delete_raises_not_corrupts(self):
        session = make_session()
        sym = session.symbol("g")
        region = session.mrs.create_region(sym.address, 4)
        session.mrs.delete_region(region)
        with pytest.raises(RegionError):
            session.mrs.delete_region(region)
        # the bitmap survived the misuse: recreate and monitor normally
        session.mrs.enable()
        session.mrs.create_region(sym.address, 4)
        session.run()
        assert session.mrs.hit_count() == 2

    def test_double_post_monitor_is_a_noop(self):
        asm = compile_source(SOURCE)
        _stmts, plan = build_plan(asm, mode="full")
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        session.mrs.pre_monitor("g")
        assert session.mrs.post_monitor("g") >= 1
        before = dict(session.mrs.patches.reasons)
        assert session.mrs.post_monitor("g") >= 1
        assert session.mrs.patches.reasons == before
        assert not session.mrs.active_sites()

    def test_double_disable_and_enable_idempotent(self):
        session = make_session()
        session.mrs.disable()
        session.mrs.disable()
        assert not session.mrs.enabled
        session.mrs.enable()
        session.mrs.enable()
        assert session.mrs.enabled
        sym = session.symbol("g")
        session.mrs.create_region(sym.address, 4)
        session.run()
        assert session.mrs.hit_count() == 2


class TestSpaceAccounting:
    def test_space_overhead_reported(self):
        session = make_session()
        sym = session.symbol("buf")
        session.mrs.create_region(sym.address, sym.size)
        bitmap_bytes, program_bytes = session.mrs.space_overhead()
        assert bitmap_bytes > 0
        assert bitmap_bytes < program_bytes * 0.1


class TestMidRunRegionCreation:
    def test_region_created_inside_loop_still_catches_writes(self):
        """A region created while stopped inside an optimized loop (the
        pre-header already ran) conservatively restores the eliminated
        in-loop checks."""
        from repro.debugger import Debugger
        source = """
        int data[40];
        int phase;
        int main() {
            int i;
            phase = 1;
            for (i = 0; i < 40; i = i + 1) {
                if (i == 10) { phase = 2; }
                data[i] = i;
            }
            print(data[39]);
            return 0;
        }
        """
        debugger = Debugger.for_source(source, optimize="full")
        debugger.watch("phase", action="stop",
                       condition=lambda v: v == 2)
        assert debugger.run() == "watch"   # stopped mid-loop, i == 10
        late = debugger.watch("data[20]")
        assert debugger.run() == "exited"
        assert late.hit_count() == 1       # caught despite elimination
        assert late.last_value() == 20
