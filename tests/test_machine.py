"""Unit tests for memory, cache, CPU accounting and traps."""

import pytest

from repro.asm.loader import run_source
from repro.machine.cache import DirectMappedCache, LINE_BYTES
from repro.machine.costs import CostModel
from repro.machine.cpu import CPU, CodeSpace, SimulationError, \
    SimulationLimit
from repro.machine.memory import Memory, MemoryFault, PAGE_SIZE


class TestMemory:
    def test_zero_fill(self):
        mem = Memory()
        assert mem.read_word(0x1000) == 0
        assert mem.read_byte(0x7FFFFFF) == 0

    def test_word_roundtrip(self):
        mem = Memory()
        mem.write_word(0x2000, 0xDEADBEEF)
        assert mem.read_word(0x2000) == 0xDEADBEEF

    def test_misaligned_word_raises(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.read_word(0x2002)
        with pytest.raises(MemoryFault):
            mem.write_word(0x2001, 1)

    def test_big_endian_bytes(self):
        mem = Memory()
        mem.write_word(0x100, 0x11223344)
        assert [mem.read_byte(0x100 + i) for i in range(4)] == \
            [0x11, 0x22, 0x33, 0x44]

    def test_byte_write_updates_word(self):
        mem = Memory()
        mem.write_byte(0x103, 0xFF)
        assert mem.read_word(0x100) == 0x000000FF

    def test_bulk_helpers(self):
        mem = Memory()
        mem.write_words(0x200, [1, 2, 3])
        assert mem.read_words(0x200, 3) == [1, 2, 3]
        mem.write_bytes(0x300, b"\x01\x02")
        assert mem.read_bytes(0x300, 2) == b"\x01\x02"

    def test_sbrk_advances_and_aligns(self):
        mem = Memory(heap_base=0x20000000)
        first = mem.sbrk(10)
        second = mem.sbrk(4)
        assert first == 0x20000000
        assert second == 0x20000010  # 10 rounded up to 16
        assert second % 8 == 0

    def test_sparse_far_addresses_cheap(self):
        mem = Memory()
        mem.write_word(0xA0000000, 7)  # segment-table distance
        assert mem.read_word(0xA0000000) == 7
        assert len(mem.words) == 1

    def test_protection(self):
        mem = Memory()
        mem.protect_range(0x5000, 8192)
        assert mem.is_protected(0x5000)
        assert mem.is_protected(0x5000 + PAGE_SIZE)
        assert not mem.is_protected(0x5000 + 2 * PAGE_SIZE)
        mem.unprotect_all()
        assert not mem.is_protected(0x5000)


class TestCache:
    def test_miss_then_hit(self):
        cache = DirectMappedCache(1024)
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.access(0x100 + LINE_BYTES - 1) is True  # same line

    def test_conflict_eviction(self):
        cache = DirectMappedCache(1024)
        conflicting = 0x100 + 1024  # same index, different tag
        cache.access(0x100)
        cache.access(conflicting)
        assert cache.access(0x100) is False  # evicted

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DirectMappedCache(1000)  # not a power of two
        with pytest.raises(ValueError):
            DirectMappedCache(48)

    def test_reset(self):
        cache = DirectMappedCache(1024)
        cache.access(0)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.access(0) is False


class TestCodeSpace:
    def test_addressing(self):
        code = CodeSpace(base=0x10000)
        from repro.isa.instructions import NopInsn
        addr = code.append_block([NopInsn(), NopInsn()])
        assert addr == 0x10000
        assert code.limit == 0x10008
        assert code.index_of(0x10004) == 1

    def test_bad_fetch_raises(self):
        code = CodeSpace(base=0x10000)
        cpu = CPU(code)
        with pytest.raises(SimulationError):
            cpu.step()

    def test_patch_returns_displaced(self):
        from repro.isa.instructions import NopInsn, TrapInsn
        code = CodeSpace()
        code.append_block([NopInsn()])
        old = code.patch(code.base, TrapInsn(0))
        assert isinstance(old, NopInsn)
        assert isinstance(code.at(code.base), TrapInsn)


class TestAccounting:
    SOURCE = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        set buf, %l0
        mov 5, %l1
        st %l1, [%l0]
        ld [%l0], %l2
        mov 0, %i0
        ret
        restore
        .endproc
        .data
buf:    .skip 8
"""

    def test_instruction_and_cycle_counts(self):
        _, _, cpu = run_source(self.SOURCE)
        assert cpu.instructions > 0
        assert cpu.cycles > cpu.instructions  # loads/stores cost extra
        assert cpu.loads == 1
        assert cpu.stores == 1

    def test_tag_attribution_covers_all_cycles(self):
        _, _, cpu = run_source(self.SOURCE)
        assert sum(cpu.tag_cycles.values()) == cpu.cycles
        assert sum(cpu.tag_counts.values()) == cpu.instructions

    def test_cost_model_load_extra(self):
        cheap = CostModel(load_extra=1, dmiss_penalty=0, imiss_penalty=0)
        dear = CostModel(load_extra=7, dmiss_penalty=0, imiss_penalty=0)
        _, _, cpu_cheap = run_source(self.SOURCE, costs=cheap)
        _, _, cpu_dear = run_source(self.SOURCE, costs=dear)
        assert cpu_dear.cycles - cpu_cheap.cycles == 6  # one load

    def test_instruction_budget(self):
        source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
loop:   ba loop
        nop
        .endproc
"""
        with pytest.raises(SimulationLimit):
            run_source(source, max_instructions=1000)

    def test_write_trace_records_orig_only(self):
        _, _, cpu = run_source(self.SOURCE, record_writes=True)
        assert len(cpu.write_trace) == 1
        _site, addr, width = cpu.write_trace[0]
        assert width == 4

    def test_cost_model_copy(self):
        costs = CostModel()
        variant = costs.copy(dmiss_penalty=20)
        assert variant.dmiss_penalty == 20
        assert variant.load_extra == costs.load_extra
        assert costs.dmiss_penalty != 20


class TestTraps:
    def test_unhandled_trap_raises(self):
        source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        ta 0x77
        .endproc
"""
        with pytest.raises(SimulationError):
            run_source(source)

    def test_exit_code(self):
        source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        mov 42, %i0
        ret
        restore
        .endproc
"""
        code, _, _ = run_source(source)
        assert code == 42

    def test_sbrk_trap(self):
        source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        mov 64, %o0
        ta 3
        mov 100, %l1
        st %l1, [%o0]
        ld [%o0], %o0
        ta 1
        mov 0, %i0
        ret
        restore
        .endproc
"""
        code, out, _ = run_source(source)
        assert out == ["100"]

    def test_print_char(self):
        source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        mov 72, %o0
        ta 2
        mov 105, %o0
        ta 2
        mov 0, %i0
        ret
        restore
        .endproc
"""
        _, out, _ = run_source(source)
        assert "".join(out) == "Hi"
