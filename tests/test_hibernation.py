"""Crash-safe session hibernation and fault-tolerance tests.

Covers the ISSUE acceptance criteria end to end: the frozen-file
store's atomic write / verified load / quarantine paths (including the
``hibernate.write`` crash-mid-write and ``hibernate.load`` IO faults),
the manager's hibernate -> transparent-thaw lifecycle with
byte-identical continuation, the resilient client (timeouts, retry
budget, ``client.send`` fault injection, reconnect-and-resume), the
``retryAfter`` backpressure hints, and the full cross-process crash
test: serve --hibernate-dir, freeze, ``kill -9``, restart, resume,
and verify the resumed run matches a never-hibernated one.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.errors import HibernationError, ServerError
from repro.faults import CLIENT_SEND, HIBERNATE_LOAD, HIBERNATE_WRITE, \
    FaultPlan
from repro.server import (DebugClient, DebugServer, RemoteError,
                          ServerConfig)
from repro.server.hibernate import (FORMAT_VERSION, FrozenSession,
                                    HibernationStore)
from repro.server.manager import (RETRY_AFTER_CAPACITY,
                                  RETRY_AFTER_DRAINING, SessionManager)

SOURCE = """
int total;
int main() {
    register int i;
    total = 0;
    for (i = 0; i < 20; i = i + 1) {
        total = total + i;
    }
    print(total);
    return 0;
}
"""


@pytest.fixture
def hdir(tmp_path):
    return str(tmp_path / "frozen")


@pytest.fixture
def server(hdir):
    instance = DebugServer(config=ServerConfig(
        max_sessions=8, workers=4, hibernate_dir=hdir)).start()
    yield instance
    instance.close(drain=False, timeout=2.0)


def client_for(server, **kwargs):
    kwargs.setdefault("timeout", 15.0)
    return DebugClient(port=server.port, **kwargs)


def launch_with_watch(client, stop=False):
    session_id = client.launch(SOURCE)
    info = client.data_breakpoint_info(session_id, "total")
    client.set_data_breakpoints(
        session_id, [{"dataId": info["dataId"], "stop": stop}])
    return session_id


def run_to_exit(client, session_id):
    stop = client.cont(session_id)
    while not stop.get("exited"):
        stop = client.cont(session_id)
    return stop


def sample_frozen(session_id="s1", payload=b"checkpoint-bytes"):
    return FrozenSession(
        session_id=session_id,
        program={"source": "int main() { return 0; }", "lang": "C"},
        breakpoints=[{"dataId": "w:total@", "name": "total",
                      "func": None, "condition": None, "stop": True,
                      "hits": []}],
        debugger_state={"started": True, "stopReason": None},
        record=None, checkpoint_payload=payload, state_digest=12345)


# -- the on-disk store --------------------------------------------------------

class TestHibernationStore:
    def test_save_load_round_trip(self, hdir):
        store = HibernationStore(hdir)
        frozen = sample_frozen()
        path = store.save(frozen)
        assert os.path.exists(path)
        assert store.session_ids() == ["s1"]
        assert store.frozen_size("s1") == os.path.getsize(path)
        loaded = store.load("s1")
        assert loaded.session_id == "s1"
        assert loaded.program == frozen.program
        assert loaded.breakpoints == frozen.breakpoints
        assert loaded.checkpoint_payload == frozen.checkpoint_payload
        assert loaded.state_digest == frozen.state_digest

    def test_save_is_atomic_no_tmp_left_behind(self, hdir):
        store = HibernationStore(hdir)
        store.save(sample_frozen())
        assert not [name for name in os.listdir(hdir)
                    if name.endswith(".tmp")]

    def test_remove_is_idempotent(self, hdir):
        store = HibernationStore(hdir)
        store.save(sample_frozen())
        assert store.remove("s1") is True
        assert store.remove("s1") is False
        assert store.session_ids() == []

    def test_missing_session_is_structured(self, hdir):
        store = HibernationStore(hdir)
        with pytest.raises(HibernationError) as excinfo:
            store.load("nope")
        assert excinfo.value.reason == "missing"

    def test_invalid_session_id_rejected(self, hdir):
        store = HibernationStore(hdir)
        for bad in ("", ".", "..", "a/b"):
            with pytest.raises(HibernationError):
                store.path_for(bad)

    def test_torn_file_quarantined(self, hdir):
        store = HibernationStore(hdir)
        path = store.save(sample_frozen())
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:len(data) // 2])  # simulated torn write
        with pytest.raises(HibernationError) as excinfo:
            store.load("s1")
        assert excinfo.value.reason == "torn"
        assert excinfo.value.quarantined is not None
        assert not os.path.exists(path)      # moved, not deleted
        assert os.path.exists(excinfo.value.quarantined)
        assert store.quarantined()
        # the bad file is inspected at most once
        with pytest.raises(HibernationError) as excinfo:
            store.load("s1")
        assert excinfo.value.reason == "missing"

    def test_bitflip_fails_digest_and_quarantines(self, hdir):
        store = HibernationStore(hdir)
        path = store.save(sample_frozen())
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(HibernationError) as excinfo:
            store.load("s1")
        assert excinfo.value.reason == "digest"
        assert excinfo.value.quarantined is not None

    def test_bad_magic_is_format_error(self, hdir):
        store = HibernationStore(hdir)
        path = store.path_for("s1")
        with open(path, "wb") as handle:
            handle.write(b"NOTRPRH\n" + b"\0" * 64)
        with pytest.raises(HibernationError) as excinfo:
            store.load("s1")
        assert excinfo.value.reason == "format"

    def test_future_format_version_rejected(self, hdir):
        store = HibernationStore(hdir)
        path = store.save(sample_frozen())
        data = bytearray(open(path, "rb").read())
        data[8:12] = (FORMAT_VERSION + 1).to_bytes(4, "big")
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(HibernationError) as excinfo:
            store.load("s1")
        # the tampered version also breaks the digest-protected body;
        # either way the file must be rejected and quarantined
        assert excinfo.value.reason in ("format", "digest")
        assert excinfo.value.quarantined is not None

    def test_write_fault_leaves_previous_file_intact(self, hdir):
        """The crash-mid-write simulation: an injected hibernate.write
        fault fires after half the bytes; the previous intact frozen
        file must survive untouched and no torn temp file remains."""
        store = HibernationStore(hdir)
        good_path = store.save(sample_frozen(payload=b"generation-1"))
        good_bytes = open(good_path, "rb").read()

        store.faults = FaultPlan.nth(HIBERNATE_WRITE)
        with pytest.raises(HibernationError) as excinfo:
            store.save(sample_frozen(payload=b"generation-2"))
        assert excinfo.value.reason == "write_failed"
        assert open(good_path, "rb").read() == good_bytes
        assert not [name for name in os.listdir(hdir)
                    if name.endswith(".tmp")]
        assert store.load("s1").checkpoint_payload == b"generation-1"

    def test_load_fault_is_transient_not_quarantine(self, hdir):
        store = HibernationStore(hdir,
                                 faults=FaultPlan.nth(HIBERNATE_LOAD))
        path = store.save(sample_frozen())
        with pytest.raises(HibernationError) as excinfo:
            store.load("s1")
        assert excinfo.value.reason == "io"
        assert os.path.exists(path)          # not the file's fault
        assert store.load("s1").session_id == "s1"  # retry succeeds


# -- manager lifecycle: hibernate, thaw, evict ---------------------------------

class TestHibernateThawLifecycle:
    def test_hibernate_then_transparent_thaw(self, server, hdir):
        with client_for(server) as client:
            client.initialize()
            session_id = launch_with_watch(client)
            body = client.hibernate(session_id)
            assert body["hibernated"] is True
            assert body["frozenBytes"] > 0
            hibernated = client.wait_event("sessionHibernated")
            assert hibernated["sessionId"] == session_id
            assert hibernated["resumable"] is True
            assert os.listdir(hdir)
            # any request naming the id thaws it transparently
            stop = run_to_exit(client, session_id)
            assert stop["exitCode"] == 0
            assert client.evaluate(session_id, "total")["value"] == 190
            # a successful thaw consumes the frozen file
            assert not [name for name in os.listdir(hdir)
                        if name.endswith(".frozen")]

    def test_resumed_run_matches_uninterrupted_run(self, server):
        """The soundness criterion: monitor hits and evaluate results
        after a freeze/thaw cycle are identical to a run that was
        never hibernated."""
        with client_for(server) as reference:
            reference.initialize()
            ref_id = launch_with_watch(reference)
            run_to_exit(reference, ref_id)
            ref_hits = [(hit["address"], hit["size"], hit["pc"],
                         hit["value"], hit["isRead"])
                        for hit in reference.pop_events("monitorHit")]
            ref_total = reference.evaluate(ref_id, "total")

        with client_for(server) as client:
            client.initialize()
            session_id = launch_with_watch(client)
            # advance partway, then freeze mid-run
            client.cont(session_id, quota=60)
            pre_hits = [(hit["address"], hit["size"], hit["pc"],
                         hit["value"], hit["isRead"])
                        for hit in client.pop_events("monitorHit")]
            assert client.hibernate(session_id)["hibernated"] is True
            resumed = client.resume(session_id)
            assert resumed["thawed"] is True
            assert client.wait_event("sessionResumed")["reason"] == "thaw"
            run_to_exit(client, session_id)
            post_hits = [(hit["address"], hit["size"], hit["pc"],
                          hit["value"], hit["isRead"])
                         for hit in client.pop_events("monitorHit")]
            assert pre_hits + post_hits == ref_hits
            assert client.evaluate(session_id, "total") == ref_total

    def test_idle_eviction_hibernates_with_store(self, hdir):
        config = ServerConfig(hibernate_dir=hdir, idle_timeout=0.2)
        with DebugServer(config=config).start() as server:
            with client_for(server) as client:
                client.initialize()
                session_id = launch_with_watch(client)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if server.manager.frozen_ids() == [session_id]:
                        break
                    time.sleep(0.05)
                assert server.manager.frozen_ids() == [session_id]
                assert client.wait_event("sessionHibernated",
                                         timeout=5.0)["reason"] == "idle"
                # the frozen id still answers requests (thawing first)
                assert client.evaluate(session_id, "total")["value"] == 0

    def test_hibernate_refuses_fault_plan_sessions(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = client.launch(
                SOURCE, faults={"schedule": {"service.create_region": []}})
            body = client.hibernate(session_id)
            assert body["hibernated"] is False
            # still live and usable
            assert client.evaluate(session_id, "total")["value"] == 0

    def test_resume_of_torn_file_fails_structurally(self, server, hdir):
        with client_for(server) as client:
            client.initialize()
            session_id = launch_with_watch(client)
            client.hibernate(session_id)
            (frozen_name,) = [name for name in os.listdir(hdir)
                              if name.endswith(".frozen")]
            path = os.path.join(hdir, frozen_name)
            data = open(path, "rb").read()
            with open(path, "wb") as handle:
                handle.write(data[:len(data) - 7])
            with pytest.raises(RemoteError) as excinfo:
                client.request("resume", {"sessionId": session_id},
                               retries=0)
            assert excinfo.value.context["reason"] == "resume_failed"
            assert excinfo.value.context["cause"] == "torn"
            assert "quarantined" in excinfo.value.context
            # the id no longer resolves: quarantine is terminal
            with pytest.raises(RemoteError) as excinfo:
                client.request("resume", {"sessionId": session_id},
                               retries=0)
            assert excinfo.value.context["reason"] == "unknown_session"

    def test_disconnect_discards_frozen_file(self, server, hdir):
        with client_for(server) as client:
            client.initialize()
            session_id = launch_with_watch(client)
            client.hibernate(session_id)
            assert client.disconnect(session_id) is True
            assert not [name for name in os.listdir(hdir)
                        if name.endswith(".frozen")]
            with pytest.raises(RemoteError) as excinfo:
                client.evaluate(session_id, "total")
            assert excinfo.value.context["reason"] == "unknown_session"

    def test_threads_lists_frozen_sessions(self, server):
        with client_for(server) as client:
            client.initialize()
            session_id = launch_with_watch(client)
            client.hibernate(session_id)
            body = client.request("threads")
            assert session_id in body["frozen"]
            assert session_id not in [entry["sessionId"]
                                      for entry in body["sessions"]]


# -- predicate watchpoints across hibernation (protocol v4) -------------------

READ_SOURCE = """
int flag;
int total;
int main() {
    register int i;
    total = 0;
    for (i = 0; i < 20; i = i + 1) {
        flag = i;
        total = total + flag;
    }
    print(total);
    return 0;
}
"""


class TestPredicateWatchpointHibernation:
    """The ISSUE satellite: a read watchpoint set via protocol fires
    through ``monitorHit``, survives hibernate/thaw, and keeps its
    predicate + transition shadow state across resume."""

    #: bit 2 of flag: False for 0-3, True for 4-7, False for 8-11, ...
    #: so a "rise" transition on the loop's reads fires at 4 and 12
    CONDITION = "($value & 4) != 0"
    RISE_VALUES = [4, 12]

    def launch_read_transition(self, client):
        session_id = client.launch(READ_SOURCE, monitorReads=True)
        info = client.data_breakpoint_info(session_id, "flag")
        assert info["accessTypes"] == ["read", "write", "readWrite"]
        results = client.set_data_breakpoints(
            session_id, [{"dataId": info["dataId"], "stop": True,
                          "condition": self.CONDITION, "when": "rise",
                          "accessType": "read"}])
        assert results[0]["verified"] is True
        assert results[0]["kind"] == "transition"
        return session_id

    def collect_stops(self, client, session_id):
        stops = []
        stop = client.cont(session_id)
        while not stop.get("exited"):
            if stop["reason"] == "watch":
                stops.append(stop["value"])
            stop = client.cont(session_id)
        return stops, stop

    def hit_stream(self, client):
        return [(hit["address"], hit["size"], hit["pc"], hit["value"],
                 hit["isRead"])
                for hit in client.pop_events("monitorHit")]

    def test_read_transition_survives_hibernate_thaw(self, server,
                                                     hdir):
        # reference: the same session, never hibernated
        with client_for(server) as reference:
            reference.initialize()
            ref_id = self.launch_read_transition(reference)
            ref_stops, ref_exit = self.collect_stops(reference, ref_id)
            assert ref_stops == self.RISE_VALUES
            assert ref_exit["exitCode"] == 0
            ref_hits = self.hit_stream(reference)
            assert any(is_read for *_rest, is_read in ref_hits)
            ref_total = reference.evaluate(ref_id, "total")

        with client_for(server) as client:
            client.initialize()
            session_id = self.launch_read_transition(client)
            # run to the first rise (read of flag == 4), then freeze
            # while the transition truth is True and the shadow holds 4
            stop = client.cont(session_id)
            assert stop["reason"] == "watch"
            assert stop["value"] == self.RISE_VALUES[0]
            pre_hits = self.hit_stream(client)
            assert client.hibernate(session_id)["hibernated"] is True

            # the frozen file carries the engine state verbatim
            frozen = HibernationStore(hdir).load(session_id)
            spec = frozen.breakpoints[0]
            assert spec["condition"] == self.CONDITION
            assert spec["when"] == "rise"
            assert spec["accessType"] == "read"
            engine = spec["engine"]
            assert engine["enabled"] is True
            assert engine["truth"] is True
            assert 4 in list(engine["shadow"].values())
            assert engine["disarm"] is None
            assert engine["stats"][0] > 0  # hits observed pre-freeze

            assert client.resume(session_id)["thawed"] is True
            stops, exit_stop = self.collect_stops(client, session_id)
            # truth stayed True across the thaw: the reads of 5-7 are
            # not fresh rises, the next stop is the read of 12
            assert [self.RISE_VALUES[0]] + stops == ref_stops
            assert exit_stop["exitCode"] == 0
            assert pre_hits + self.hit_stream(client) == ref_hits
            assert client.evaluate(session_id, "total") == ref_total


# -- client resilience ---------------------------------------------------------

class TestClientResilience:
    def test_injected_send_fault_is_retried(self, server):
        plan = FaultPlan.nth(CLIENT_SEND, n=1)  # fault the 2nd send
        with client_for(server, fault_plan=plan, backoff=0.01,
                        backoff_seed=7) as client:
            client.initialize()
            session_id = launch_with_watch(client)  # trips + retries
            assert plan.fired
            assert client.evaluate(session_id, "total")["value"] == 0

    def test_reconnect_resumes_hibernated_sessions(self, server):
        with client_for(server, backoff=0.01, backoff_seed=7) as client:
            client.initialize()
            session_id = launch_with_watch(client)
            client.cont(session_id, quota=60)
            client.pop_events()
            # simulate a network partition: kill the transport under
            # the client; the server's connection-drop path hibernates
            client._sock.shutdown(socket.SHUT_RDWR)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if server.manager.frozen_ids() == [session_id]:
                    break
                time.sleep(0.05)
            assert server.manager.frozen_ids() == [session_id]
            # the next request reconnects, replays initialize, and
            # resumes the session id — then executes normally
            stop = run_to_exit(client, session_id)
            assert stop["exitCode"] == 0
            assert not client.resume_errors
            assert client.evaluate(session_id, "total")["value"] == 190

    def test_request_timeout_is_bounded(self, server):
        with client_for(server) as client:
            client.initialize()
            # continue is not idempotent: a timeout must surface, and
            # promptly, rather than blocking for the default 15s
            session_id = client.launch(SOURCE)
            from repro.server.client import RequestTimeout
            started = time.monotonic()
            with pytest.raises(RequestTimeout):
                client.request("continue", {"sessionId": session_id},
                               timeout=0.0, retries=0)
            assert time.monotonic() - started < 5.0

    def test_capacity_error_carries_retry_after(self, hdir):
        config = ServerConfig(max_sessions=1, hibernate_dir=hdir)
        with DebugServer(config=config).start() as server:
            with client_for(server) as client:
                client.initialize()
                client.launch(SOURCE)
                with pytest.raises(RemoteError) as excinfo:
                    client.request("launch", {"source": SOURCE},
                                   retries=0)
                assert excinfo.value.context["reason"] == "capacity"
                assert excinfo.value.retry_after == \
                    pytest.approx(RETRY_AFTER_CAPACITY)

    def test_heartbeat_keeps_liveness_window_open(self, hdir):
        config = ServerConfig(hibernate_dir=hdir, liveness_timeout=1.0)
        with DebugServer(config=config).start() as server:
            with client_for(server, heartbeat=0.25) as client:
                client.initialize()
                session_id = launch_with_watch(client)
                # without heartbeats the server would drop us at 1s;
                # the ping loop keeps the connection (and session) live
                time.sleep(2.0)
                assert server.manager.frozen_ids() == []
                assert client.evaluate(session_id, "total",
                                       )["value"] == 0

    def test_silent_client_is_hibernated_by_liveness_timeout(self, hdir):
        config = ServerConfig(hibernate_dir=hdir, liveness_timeout=0.3)
        with DebugServer(config=config).start() as server:
            client = client_for(server)  # no heartbeat
            try:
                client.initialize()
                session_id = launch_with_watch(client)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if server.manager.frozen_ids() == [session_id]:
                        break
                    time.sleep(0.05)
                assert server.manager.frozen_ids() == [session_id]
            finally:
                client.close()


# -- manager robustness (satellite fixes) -------------------------------------

class TestManagerRobustness:
    def test_destroy_placeholder_emits_nothing(self):
        manager = SessionManager(max_sessions=2)
        seen = []

        def factory():
            raise RuntimeError("compile failed")

        with pytest.raises(RuntimeError):
            manager.create(factory)
        # the placeholder was destroyed without a sessionEvicted emit
        # (no subscribers existed, and none were notified)
        assert manager.session_ids() == []
        assert seen == []

    def test_emit_survives_concurrent_unsubscribe(self):
        from repro.server.manager import ManagedSession

        managed = ManagedSession("s1", debugger=object())
        seen = []

        def good(event, body):
            seen.append((event, body["sessionId"]))

        def dying(event, body):
            raise OSError("sink died")

        managed.subscribe(good)
        managed.subscribe(dying)
        managed.subscribe(good)  # idempotent: registered once
        assert managed.emitters.count(good) == 1
        managed.emit("monitorHit", {"address": 4})
        assert seen == [("monitorHit", "s1")]
        assert dying not in managed.emitters  # dead sink pruned
        managed.closed = True
        managed.emit("monitorHit", {"address": 8})  # no-op when closed
        assert seen == [("monitorHit", "s1")]

    def test_shutdown_drain_lets_inflight_finish(self):
        import threading

        manager = SessionManager(max_sessions=2, workers=2)
        managed = manager.create(lambda: object())
        release = threading.Event()
        finished = []

        def slow(session):
            release.wait(5.0)
            finished.append(session.id)
            return "done"

        worker = threading.Thread(
            target=lambda: manager.execute(managed.id, slow))
        worker.start()
        time.sleep(0.1)  # let the execute claim its slot
        shutdown = threading.Thread(
            target=lambda: manager.shutdown(drain=True, timeout=5.0))
        shutdown.start()
        time.sleep(0.1)
        # draining: new work refused with a retryAfter hint...
        with pytest.raises(ServerError) as excinfo:
            manager.execute(managed.id, lambda session: None)
        assert excinfo.value.context["reason"] == "draining"
        assert excinfo.value.context["retryAfter"] == \
            pytest.approx(RETRY_AFTER_DRAINING)
        # ...but the in-flight execution completes before teardown
        release.set()
        worker.join(5.0)
        shutdown.join(5.0)
        assert finished == [managed.id]
        assert manager.session_ids() == []

    def test_shutdown_drain_timeout_force_destroys(self):
        import threading

        manager = SessionManager(max_sessions=2, workers=2)
        managed = manager.create(lambda: object())
        release = threading.Event()

        def wedged(session):
            release.wait(10.0)

        worker = threading.Thread(
            target=lambda: manager.execute(managed.id, wedged))
        worker.start()
        time.sleep(0.1)
        # free the wedged execution only *after* the 0.3s drain window
        # has expired, so teardown provably did not wait the full 10s
        threading.Timer(1.0, release.set).start()
        started = time.monotonic()
        manager.shutdown(drain=True, timeout=0.3)
        elapsed = time.monotonic() - started
        assert 0.3 <= elapsed < 5.0
        assert manager.session_ids() == []
        release.set()
        worker.join(5.0)


# -- the cross-process crash test ---------------------------------------------

def _spawn_server(hibernate_dir):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--hibernate-dir", hibernate_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True)
    banner = process.stdout.readline()
    assert "listening on" in banner, banner
    port = int(banner.split("listening on ")[1].split()[0]
               .rsplit(":", 1)[1])
    adoption = process.stdout.readline()
    assert "hibernation:" in adoption, adoption
    adopted = int(adoption.split("(")[1].split()[0])
    return process, port, adopted


class TestCrashRecovery:
    def test_kill_dash_nine_then_resume_byte_identical(self, tmp_path):
        """The headline acceptance test: a session hibernated to disk
        survives ``kill -9`` of the server; the client reconnects with
        backoff, resumes by id, and the remaining monitor hits and
        evaluate results are identical to an uninterrupted run."""
        hibernate_dir = str(tmp_path / "frozen")

        # reference: the same program, never hibernated
        with DebugServer(config=ServerConfig()).start() as reference:
            with client_for(reference) as client:
                client.initialize()
                ref_id = launch_with_watch(client)
                run_to_exit(client, ref_id)
                ref_hits = [(hit["address"], hit["size"], hit["pc"],
                             hit["value"], hit["isRead"])
                            for hit in client.pop_events("monitorHit")]
                ref_total = client.evaluate(ref_id, "total")["value"]

        process, port, adopted = _spawn_server(hibernate_dir)
        try:
            assert adopted == 0
            client = DebugClient(port=port, timeout=15.0, backoff=0.05,
                                 backoff_seed=11)
            client.initialize()
            session_id = launch_with_watch(client)
            client.cont(session_id, quota=60)
            pre_hits = [(hit["address"], hit["size"], hit["pc"],
                         hit["value"], hit["isRead"])
                        for hit in client.pop_events("monitorHit")]
            assert client.hibernate(session_id)["hibernated"] is True

            process.kill()  # SIGKILL: no drain, no cleanup
            process.wait(timeout=10)
            frozen = [name for name in os.listdir(hibernate_dir)
                      if name.endswith(".frozen")]
            assert frozen, "frozen file must survive the crash"

            restarted, port2, adopted2 = _spawn_server(hibernate_dir)
            try:
                assert adopted2 == 1
                # the old connection is dead; reconnect-and-resume is
                # automatic, but the port moved, so point the client
                # at the restarted process first
                client.port = port2
                # the dead connection makes this request reconnect with
                # backoff; the handshake resumes (thaws) the session id
                # before the explicit resume below re-reads its state
                resumed = client.resume(session_id)
                assert resumed["sessionId"] == session_id
                assert not client.resume_errors
                stop = run_to_exit(client, session_id)
                assert stop["exitCode"] == 0
                post_hits = [(hit["address"], hit["size"], hit["pc"],
                              hit["value"], hit["isRead"])
                             for hit in client.pop_events("monitorHit")]
                assert pre_hits + post_hits == ref_hits
                assert client.evaluate(session_id,
                                       "total")["value"] == ref_total
                client.close()
            finally:
                restarted.send_signal(signal.SIGTERM)
                try:
                    restarted.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    restarted.kill()
        finally:
            if process.poll() is None:
                process.kill()
