"""Persistent trace store: ingest, dedup, retention, crash safety,
and the ``repro analyze`` query layer.

The ISSUE acceptance criteria exercised here:

* the trace's run-metadata header is embedded in the canonical bytes
  (v2) and version-1 traces still decode;
* ingesting the same recording twice is an idempotent, counted no-op;
* keyframes are content-addressed: N runs of the same deterministic
  program store each keyframe payload exactly once;
* retention (hypothesis property tests) respects its bounds, never
  deletes a still-referenced keyframe, and never orphans a run;
* ``analyze provenance`` answers byte-for-byte what the in-memory
  :class:`ReplayController.last_write` answers;
* a fault (or a ``kill -9``) at the ``store.commit`` injection point
  leaves the previously committed generation intact and the store
  usable.
"""

import hashlib
import os
import struct
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.debugger import Debugger
from repro.errors import ReplayError, StoreError
from repro.faults import STORE_COMMIT, FaultPlan
from repro.replay.trace import WriteRecord, WriteTrace
from repro.store import (KeyframeExport, RecordingExport,
                         RetentionPolicy, TraceStore)

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

SOURCE = """
int total;
int grid[8];

int bump(int k) {
    total = total + k;
    return total;
}

int main() {
    register int i;
    for (i = 0; i < 6; i = i + 1) {
        bump(i);
        grid[i] = total;
    }
    print(total);
    return 0;
}
"""


def record_run(source=SOURCE, watch="total", stride=40):
    """Record *source* to completion with one watchpoint."""
    debugger = Debugger.for_source(source, optimize="full")
    debugger.watch(watch, action="log")
    recorder = debugger.record(stride=stride)
    reason = debugger.run()
    while reason != "exited":
        reason = debugger.run()
    return debugger, recorder


@pytest.fixture
def store(tmp_path):
    instance = TraceStore(str(tmp_path / "store.sqlite"))
    yield instance
    instance.close()


# -- satellite: run-metadata header in the canonical trace bytes -----------

class TestTraceMeta:
    def records(self):
        return [WriteRecord(10, 0x100, 0x2000, 4, 0, 7, False),
                WriteRecord(20, 0x104, 0x2004, 4, 7, 9, True)]

    def test_meta_round_trips_through_bytes(self):
        trace = WriteTrace(meta={"workload": "w", "seed": 3,
                                 "scale": 0.5})
        for record in self.records():
            trace.append(record)
        decoded = WriteTrace.from_bytes(trace.to_bytes())
        assert decoded.meta == {"workload": "w", "seed": 3,
                                "scale": 0.5}
        assert list(decoded) == list(trace)

    def test_meta_participates_in_digest(self):
        one, two = WriteTrace(meta={"seed": 1}), WriteTrace(
            meta={"seed": 2})
        for record in self.records():
            one.append(record)
            two.append(record)
        assert one.to_bytes() != two.to_bytes()
        assert one.digest() != two.digest()

    def test_meta_is_canonical_under_key_order(self):
        one = WriteTrace(meta={"a": 1, "b": 2})
        two = WriteTrace(meta={"b": 2, "a": 1})
        assert one.to_bytes() == two.to_bytes()

    def test_v1_trace_still_decodes(self):
        # a version-1 trace: fixed header + records, no metadata block
        records = self.records()
        data = struct.Struct(">4sHQQ").pack(b"RPWT", 1, 0, len(records))
        data += b"".join(record.pack() for record in records)
        decoded = WriteTrace.from_bytes(data)
        assert decoded.meta == {}
        assert list(decoded) == records

    def test_implausible_meta_length_is_refused(self):
        data = struct.Struct(">4sHQQ").pack(b"RPWT", 2, 0, 0)
        data += struct.Struct(">I").pack(1 << 30)
        with pytest.raises(ValueError):
            WriteTrace.from_bytes(data)


# -- ingest: round-trip, idempotence, dedup --------------------------------

class TestIngest:
    def test_round_trip_preserves_trace_and_header(self, store):
        _debugger, recorder = record_run()
        result = store.ingest_recorder(recorder, workload="w",
                                       scale=0.5, seed=7)
        assert not result.duplicate
        run = store.run(result.run_id)
        assert (run.workload, run.scale, run.seed) == ("w", 0.5, 7)
        assert run.instructions == recorder.cpu.instructions
        assert run.trace_records == len(recorder.trace)
        trace = store.trace(result.run_id)
        assert trace.to_bytes() == recorder.trace.to_bytes()
        assert trace.meta["workload"] == "w"

    def test_reingest_is_counted_noop(self, store):
        _debugger, recorder = record_run()
        first = store.ingest_recorder(recorder, workload="w", seed=1)
        again = store.ingest_recorder(recorder, workload="w", seed=1)
        assert again.duplicate
        assert again.run_id == first.run_id
        assert (again.keyframes_new, again.keyframes_shared) == (0, 0)
        runs = store.runs()
        assert len(runs) == 1
        assert runs[0].ingest_count == 2
        stats = store.stats()
        assert stats["ingests"] == 2
        assert stats["duplicate_ingests"] == 1

    def test_identical_runs_share_every_keyframe(self, store):
        results = []
        for seed in (1, 2, 3):
            _debugger, recorder = record_run()
            results.append(store.ingest_recorder(
                recorder, workload="w", seed=seed))
        first = results[0]
        assert first.keyframes_new > 0
        for later in results[1:]:
            assert not later.duplicate      # distinct seeds => new runs
            assert later.keyframes_new == 0
            assert later.keyframes_shared == first.keyframes_new
        stats = store.stats()
        assert stats["runs"] == 3
        assert stats["unique_keyframes"] == first.keyframes_new
        assert stats["keyframe_refs"] == 3 * first.keyframes_new
        assert stats["dedup_ratio"] == pytest.approx(3.0, abs=0.25)

    def test_export_requires_workload_name(self, store):
        _debugger, recorder = record_run()
        recorder.trace.meta.clear()
        export = recorder.export()._replace(meta={})
        with pytest.raises(StoreError):
            store.ingest(export)

    def test_debugger_archive_recording(self, store):
        debugger, _recorder = record_run()
        result = debugger.archive_recording(store, workload="w")
        assert store.run(result.run_id).workload == "w"
        plain = Debugger.for_source(SOURCE)
        with pytest.raises(ReplayError):
            plain.archive_recording(store, workload="w")


# -- provenance: byte-for-byte agreement with the replay engine ------------

class TestProvenance:
    def test_matches_in_memory_last_write(self, store):
        debugger, recorder = record_run()
        answer = debugger.last_write("total")
        assert answer is not None
        result = store.ingest_recorder(recorder, workload="w", seed=1)
        _entry, addr, size = debugger.resolve("total")
        rows = store.provenance(addr, size)
        assert len(rows) == 1
        row = rows[0]
        assert row["run"] == result.run_id
        assert row["written"] is True
        assert (row["pc"], row["index"], row["old"], row["new"],
                row["addr"], row["size"]) == (
            answer.pc, answer.index, answer.old, answer.new,
            answer.addr, answer.size)

    def test_before_index_and_never_written(self, store):
        debugger, recorder = record_run()
        store.ingest_recorder(recorder, workload="w", seed=1)
        _entry, addr, size = debugger.resolve("total")
        first = recorder.trace.at(recorder.trace.base)
        early = store.provenance(addr, size,
                                 before_index=first.stop_index)
        assert early[0]["index"] == first.index
        nothing = store.provenance(0xDEAD0000, 4)
        assert nothing[0]["written"] is False

    def test_hot_regions_cover_the_watched_word(self, store):
        debugger, recorder = record_run()
        store.ingest_recorder(recorder, workload="w", seed=1)
        _entry, addr, _size = debugger.resolve("total")
        hot = store.hot(top=5)
        assert any(region["addr"] <= addr < region["addr"]
                   + region["size"] for region in hot)
        writes = store.write_stats()
        assert writes[0]["writes"] == len(
            [r for r in recorder.trace if not r.is_read])


# -- retention: property-tested bounds -------------------------------------

def synthetic_export(workload, seed, keyframe_ids, records=3):
    """A fast fake recording: deterministic bytes, no simulator."""
    trace = WriteTrace(meta={"workload": workload, "seed": seed,
                             "monitors": "cafe", "stride": 100})
    for i in range(records):
        trace.append(WriteRecord(i * 10, 0x100, 0x2000 + 4 * (i % 2),
                                 4, i, i + 1, False))
    blob = trace.to_bytes()
    keyframes = []
    for position, ident in enumerate(keyframe_ids):
        payload = (b"keyframe-%d-" % ident) * 64
        keyframes.append(KeyframeExport(
            position * 100, 0, ident,
            payload, hashlib.sha256(payload).hexdigest()))
    return RecordingExport(
        meta=dict(trace.meta), trace_bytes=blob,
        trace_digest=hashlib.sha256(blob).hexdigest(),
        keyframes=keyframes,
        stats={"instructions": 1000 + seed, "stores": 10,
               "wall_time_s": 0.01, "start_index": 0,
               "end_index": 1000 + seed, "trace_records": records,
               "trace_dropped": 0})


def check_referential_integrity(store):
    """No orphan payloads, no dangling references, no partial runs."""
    conn = store.connection._conn
    orphans = conn.execute(
        "SELECT COUNT(*) FROM keyframes WHERE digest NOT IN "
        "(SELECT keyframe_digest FROM run_keyframes)").fetchone()[0]
    dangling = conn.execute(
        "SELECT COUNT(*) FROM run_keyframes WHERE keyframe_digest "
        "NOT IN (SELECT digest FROM keyframes)").fetchone()[0]
    widowed = conn.execute(
        "SELECT COUNT(*) FROM run_keyframes WHERE run_id NOT IN "
        "(SELECT id FROM runs)").fetchone()[0]
    assert (orphans, dangling, widowed) == (0, 0, 0)


run_lists = st.lists(
    st.tuples(st.sampled_from(["alpha", "beta"]),
              st.lists(st.integers(min_value=0, max_value=5),
                       min_size=1, max_size=4, unique=True)),
    min_size=1, max_size=8)


class TestRetentionProperties:
    @settings(max_examples=25, deadline=None)
    @given(runs=run_lists, keep=st.integers(min_value=1, max_value=3))
    def test_max_runs_per_workload(self, runs, keep):
        policy = RetentionPolicy(max_runs_per_workload=keep)
        with TraceStore(":memory:", retention=policy) as store:
            newest = {}
            for seed, (workload, keyframe_ids) in enumerate(runs):
                result = store.ingest(synthetic_export(
                    workload, seed, keyframe_ids))
                newest[workload] = result.run_key
            survivors = store.runs()
            per_workload = {}
            for run in survivors:
                per_workload.setdefault(run.workload, []).append(run)
            for workload, kept in per_workload.items():
                assert len(kept) <= keep
            # the newest run of every workload always survives
            # (run_key == trace_digest: the content address)
            surviving_keys = {run.trace_digest for run in survivors}
            for workload, run_key in newest.items():
                assert run_key in surviving_keys
            check_referential_integrity(store)

    @settings(max_examples=25, deadline=None)
    @given(runs=run_lists,
           budget=st.integers(min_value=1, max_value=40000))
    def test_max_bytes_lru(self, runs, budget):
        with TraceStore(":memory:") as store:
            for seed, (workload, keyframe_ids) in enumerate(runs):
                store.ingest(synthetic_export(workload, seed,
                                              keyframe_ids))
            newest_ids = {max(r.id for r in store.runs()
                              if r.workload == workload)
                          for workload in {r.workload
                                           for r in store.runs()}}
            protected = {run.trace_digest for run in store.runs()
                         if run.id in newest_ids}
            report = store.apply_retention(
                RetentionPolicy(max_bytes=budget))
            survivors = store.runs()
            # either inside budget, or only protected runs remain
            if report.bytes_after > budget:
                assert {run.trace_digest
                        for run in survivors} <= protected
            # every surviving run still has all of its keyframes
            for run in survivors:
                check_referential_integrity(store)

    def test_shared_keyframe_survives_partial_eviction(self):
        with TraceStore(":memory:") as store:
            store.ingest(synthetic_export("w", 1, [0, 1]))
            store.ingest(synthetic_export("w", 2, [1, 2]))
            store.apply_retention(
                RetentionPolicy(max_runs_per_workload=1))
            survivors = store.runs()
            assert [run.seed for run in survivors] == [2]
            digests = {row[0] for row in store.connection.query(
                "SELECT digest FROM keyframes")}
            # keyframe 1 was shared with the evicted run: still here;
            # keyframe 0 was only the evicted run's: collected
            payloads = {hashlib.sha256(
                (b"keyframe-%d-" % n) * 64).hexdigest(): n
                for n in (0, 1, 2)}
            kept = {payloads[d] for d in digests}
            assert kept == {1, 2}
            check_referential_integrity(store)


# -- crash consistency across the store.commit fault point -----------------

class TestCrashConsistency:
    def test_injected_fault_rolls_back_and_store_survives(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with TraceStore(path) as store:
            store.ingest(synthetic_export("w", 1, [0]))
        plan = FaultPlan.nth(STORE_COMMIT, 0)
        with TraceStore(path, faults=plan) as store:
            with pytest.raises(StoreError) as info:
                store.ingest(synthetic_export("w", 2, [0, 1]))
            assert info.value.reason == "commit_failed"
            # the previous generation is intact and queryable
            assert [run.seed for run in store.runs()] == [1]
            check_referential_integrity(store)
            # the plan fired once; the same store object keeps working
            retry = store.ingest(synthetic_export("w", 2, [0, 1]))
            assert not retry.duplicate
            assert sorted(run.seed for run in store.runs()) == [1, 2]

    def test_kill_dash_nine_mid_commit(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with TraceStore(path) as store:
            store.ingest(synthetic_export("w", 1, [0]))
        child = subprocess.run(
            [sys.executable, "-c", KILL_MID_COMMIT, path],
            env={**os.environ, "PYTHONPATH": SRC_DIR},
            capture_output=True, text=True, timeout=120)
        assert child.returncode == 9, child.stderr
        # reopen: WAL recovery leaves exactly the prior generation
        with TraceStore(path) as store:
            assert [run.seed for run in store.runs()] == [1]
            check_referential_integrity(store)
            store.ingest(synthetic_export("w", 3, [0, 1]))
            assert sorted(run.seed for run in store.runs()) == [1, 3]


KILL_MID_COMMIT = """
import hashlib, os, sys
from repro.faults import FaultPlan, STORE_COMMIT
from repro.replay.trace import WriteTrace
from repro.store import KeyframeExport, RecordingExport, TraceStore

class KillPlan(FaultPlan):
    def trip(self, point, **context):
        if point == STORE_COMMIT:
            os._exit(9)   # no rollback, no unwind: a real crash

trace = WriteTrace(meta={"workload": "w", "seed": 2,
                         "monitors": "cafe", "stride": 100})
blob = trace.to_bytes()
keyframes = []
for position, ident in enumerate((0, 1)):
    payload = (b"keyframe-%d-" % ident) * 64
    keyframes.append(KeyframeExport(
        position * 100, 0, ident, payload,
        hashlib.sha256(payload).hexdigest()))
export = RecordingExport(
    meta=dict(trace.meta), trace_bytes=blob,
    trace_digest=hashlib.sha256(blob).hexdigest(),
    keyframes=keyframes,
    stats={"instructions": 1002, "stores": 10, "wall_time_s": 0.01,
           "start_index": 0, "end_index": 1002, "trace_records": 0,
           "trace_dropped": 0})
store = TraceStore(sys.argv[1], faults=KillPlan())
store.ingest(export)
os._exit(0)
"""


# -- the analyze CLI -------------------------------------------------------

class TestAnalyzeCli:
    @pytest.fixture
    def populated(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        for seed in (1, 2):
            assert cli_main(["record", "--workload", "023.eqntott",
                             "--scale", "0.2", "--seed", str(seed),
                             "--watch", "__seed",
                             "--store", path]) == 0
        return path

    def test_runs_hot_writes_stats(self, populated, capsys):
        assert cli_main(["analyze", "--db", populated, "runs"]) == 0
        out = capsys.readouterr().out
        assert "023.eqntott" in out
        assert cli_main(["analyze", "--db", populated, "hot"]) == 0
        assert "0x" in capsys.readouterr().out
        assert cli_main(["analyze", "--db", populated, "writes",
                         "--json"]) == 0
        assert '"writes_per_kinstr"' in capsys.readouterr().out
        assert cli_main(["analyze", "--db", populated, "stats"]) == 0
        assert "dedup_ratio" in capsys.readouterr().out

    def test_provenance_resolves_from_the_registry(self, populated,
                                                   capsys):
        assert cli_main(["analyze", "--db", populated, "provenance",
                         "__seed", "--workload", "023.eqntott"]) == 0
        out = capsys.readouterr().out
        assert "-- provenance of" in out
        assert "->" in out

    def test_regress_threshold_gates_exit_code(self, tmp_path, capsys):
        path = str(tmp_path / "store.sqlite")
        with TraceStore(path) as store:
            base = synthetic_export("w", 1, [0])
            slow = synthetic_export("w", 2, [0])._replace(
                stats={**base.stats, "instructions": 5000,
                       "end_index": 5000, "wall_time_s": 0.5})
            store.ingest(base)
            store.ingest(slow)
        assert cli_main(["analyze", "--db", path, "regress",
                         "--workload", "w"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert cli_main(["analyze", "--db", path, "regress",
                         "--workload", "w",
                         "--threshold", "1000000"]) == 0


# -- server integration: archive on disconnect -----------------------------

class TestServerArchiving:
    def test_disconnect_archives_the_recording(self, tmp_path):
        from repro.server import DebugClient, DebugServer, ServerConfig
        path = str(tmp_path / "store.sqlite")
        config = ServerConfig(max_sessions=4, workers=2,
                              trace_store=path)
        with DebugServer(config=config).start() as server:
            with DebugClient(port=server.port, timeout=15.0) as client:
                client.initialize()
                session_id = client.launch(SOURCE, record=True,
                                           workload="served")
                info = client.data_breakpoint_info(session_id, "total")
                client.set_data_breakpoints(
                    session_id, [{"dataId": info["dataId"],
                                  "stop": False}])
                stop = client.cont(session_id)
                while not stop.get("exited"):
                    stop = client.cont(session_id)
                client.disconnect(session_id)
        with TraceStore(path) as store:
            runs = store.runs(workload="served")
            assert len(runs) == 1
            assert runs[0].trace_records > 0
