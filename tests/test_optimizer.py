"""Tests for the §4 optimizer: Figure 4 bound propagation, affine
decomposition, monotonic detection, plan construction, and the check
budget of optimized programs."""

import pytest

from repro.asm.parser import parse
from repro.instrument.plan import ELIM_RANGE, ELIM_SYMBOL
from repro.instrument.writes import enumerate_write_sites
from repro.ir.build import apply_promotion, build_ir
from repro.ir.loops import find_loops
from repro.ir.ssa import convert_to_ssa
from repro.ir.tac import Const
from repro.minic.codegen import compile_source
from repro.optimizer.affine import (decompose_affine, find_monotonic_vars,
                                    fold_constant, is_invariant,
                                    resolve_monotonic)
from repro.optimizer.asserts import insert_asserts
from repro.optimizer.bounds import C, classify_address, propagate_bounds
from repro.optimizer.pipeline import build_plan
from repro.optimizer.symbols import collect_static_symbols


def analyzed(source, lang="C"):
    """Compile, build IR, promote, assert, SSA — ready for loop work."""
    asm = compile_source(source, lang=lang)
    stmts = parse(asm)
    enumerate_write_sites(stmts, lang)
    symbols = collect_static_symbols(stmts)
    funcs, escaped = build_ir(stmts, symbols)
    promoted = apply_promotion(funcs, escaped)
    func = funcs[0]
    insert_asserts(func)
    info = convert_to_ssa(func)
    loops = find_loops(func, info.order)
    return stmts, func, info, loops, promoted


MONO_LOOP = """
int a[50];
int main() {
    int i;
    for (i = 0; i < 50; i = i + 1) {
        a[i] = i;
    }
    print(a[49]);
    return 0;
}
"""


class TestMonotonicDetection:
    def test_increasing_variable_found(self):
        _stmts, _func, info, loops, _p = analyzed(MONO_LOOP)
        loop = loops[0]
        mono = find_monotonic_vars(loop)
        assert len(mono) == 1
        var = next(iter(mono.values()))
        assert var.direction == "inc" and var.step == 1

    def test_decreasing_variable_found(self):
        source = MONO_LOOP.replace(
            "for (i = 0; i < 50; i = i + 1)",
            "for (i = 49; i >= 0; i = i - 1)")
        _stmts, _func, info, loops, _p = analyzed(source)
        mono = find_monotonic_vars(loops[0])
        assert len(mono) == 1
        assert next(iter(mono.values())).direction == "dec"

    def test_stride_detected(self):
        source = MONO_LOOP.replace("i = i + 1", "i = i + 3")
        _stmts, _func, info, loops, _p = analyzed(source)
        mono = find_monotonic_vars(loops[0])
        assert next(iter(mono.values())).step == 3

    def test_non_monotonic_update_rejected(self):
        source = """
        int a[50];
        int main() {
            int i;
            i = 25;
            while (a[i] == 0) {
                a[i] = 1;
                i = a[i] + i % 7;      // data-dependent update
                if (i > 40) break;
            }
            print(i);
            return 0;
        }
        """
        _stmts, _func, info, loops, _p = analyzed(source)
        for loop in loops:
            for var in find_monotonic_vars(loop).values():
                # any detected variable must have a constant step
                assert isinstance(var.step, int)


class TestBoundPropagation:
    def _table_for(self, source, lang="C"):
        stmts, func, info, loops, _p = analyzed(source, lang)
        loop = loops[0]
        mono = find_monotonic_vars(loop)
        return loop, info, propagate_bounds(loop, info.order, mono), mono

    def test_constants_classed_c(self):
        loop, info, table, _m = self._table_for(MONO_LOOP)
        assert table.get(Const(12)) == (C, C)

    def test_monotonic_write_classified_range(self):
        loop, info, table, _m = self._table_for(MONO_LOOP)
        store = next(op for b in info.order if b.bid in loop.body
                     for op in b.ops
                     if op.kind == "st" and op.site is not None)
        base, index, disp = store.mem
        kind = classify_address(
            table, [base, index, Const(disp) if disp else None])
        assert kind == "range"

    def test_invariant_address_classified_li(self):
        source = """
        int total;
        int feed(int *sink, int n) {
            register int i;
            for (i = 0; i < n; i = i + 1) {
                *sink = *sink + i;
            }
            return *sink;
        }
        int main() { print(feed(&total, 5)); return 0; }
        """
        asm = compile_source(source)
        stmts = parse(asm)
        enumerate_write_sites(stmts, "C")
        symbols = collect_static_symbols(stmts)
        funcs, escaped = build_ir(stmts, symbols)
        apply_promotion(funcs, escaped)
        feed = next(f for f in funcs if f.name == "feed")
        insert_asserts(feed)
        info = convert_to_ssa(feed)
        loops = find_loops(feed, info.order)
        loop = loops[0]
        mono = find_monotonic_vars(loop)
        table = propagate_bounds(loop, info.order, mono)
        store = next(op for b in info.order if b.bid in loop.body
                     for op in b.ops
                     if op.kind == "st" and op.site is not None)
        base, index, disp = store.mem
        kind = classify_address(
            table, [base, index, Const(disp) if disp else None])
        assert kind == "li"

    def test_unbounded_indirect_write_not_classified(self):
        source = """
        int a[50];
        int idx[50];
        int main() {
            int i;
            for (i = 0; i < 50; i = i + 1) {
                a[idx[i]] = i;       // scatter: no static bound
                idx[i] = i;
            }
            print(a[0]);
            return 0;
        }
        """
        stmts, func, info, loops, _p = analyzed(source)
        loop = loops[0]
        mono = find_monotonic_vars(loop)
        table = propagate_bounds(loop, info.order, mono)
        kinds = []
        for block in info.order:
            if block.bid not in loop.body:
                continue
            for op in block.ops:
                if op.kind == "st" and op.site is not None:
                    base, index, disp = op.mem
                    kinds.append(classify_address(
                        table, [base, index,
                                Const(disp) if disp else None]))
        # the scatter write is unclassifiable; the direct one is ranged
        assert None in kinds and "range" in kinds


class TestAffine:
    def test_fold_constant_through_arithmetic(self):
        source = MONO_LOOP.replace("i < 50", "i < 50 - 1")
        stmts, func, info, loops, _p = analyzed(source)
        found = []
        for block in info.order:
            for op in block.ops:
                if op.kind == "assert" and op.relation == "lt":
                    found.append(fold_constant(op.mem[1]))
        assert 49 in found

    def test_decompose_affine_form(self):
        stmts, func, info, loops, _p = analyzed(MONO_LOOP)
        loop = loops[0]
        mono = find_monotonic_vars(loop)
        store = next(op for b in info.order if b.bid in loop.body
                     for op in b.ops
                     if op.kind == "st" and op.site is not None)
        base, index, _disp = store.mem
        affine = decompose_affine(index, loop, mono)
        assert affine is not None
        coefs = [coef for _a, coef in affine.terms.values()]
        assert coefs == [4]   # word-scaled induction variable


class TestPlans:
    def test_symbol_sites_recorded_per_scope(self):
        source = """
        int g;
        int f() {
            int x;
            x = 1;
            g = x;
            return x;
        }
        int main() { print(f()); return 0; }
        """
        _stmts, plan = build_plan(compile_source(source), mode="sym")
        assert ("f", "x") in plan.symbol_sites
        assert ("", "g") in plan.symbol_sites

    def test_sym_mode_has_no_loop_changes(self):
        _stmts, plan = build_plan(compile_source(MONO_LOOP), mode="sym")
        assert not plan.preheaders
        assert not plan.loop_sites
        assert all(kind == ELIM_SYMBOL
                   for kind in plan.eliminate.values())
        assert plan.reserved_registers == 4

    def test_full_mode_adds_range_elimination(self):
        _stmts, plan = build_plan(compile_source(MONO_LOOP), mode="full")
        kinds = set(plan.eliminate.values())
        assert ELIM_RANGE in kinds
        assert plan.preheaders
        assert plan.reserved_registers == 5

    def test_fp_and_jump_checks_cover_all_functions(self):
        source = """
        int one() { return 1; }
        int two() { return 2; }
        int main() { print(one() + two()); return 0; }
        """
        _stmts, plan = build_plan(compile_source(source), mode="sym")
        assert len(plan.fp_push_indices) == 3
        assert len(plan.fp_check_indices) == 3
        assert len(plan.jmp_check_indices) == 3

    def test_bad_mode_rejected(self):
        from repro.errors import OptimizeModeError, ReproError
        with pytest.raises(ValueError):
            build_plan(compile_source(MONO_LOOP), mode="everything")
        with pytest.raises(OptimizeModeError) as excinfo:
            build_plan(compile_source(MONO_LOOP), mode="everything")
        assert isinstance(excinfo.value, ReproError)
        assert excinfo.value.mode == "everything"
        assert "ipa" in excinfo.value.valid
        assert "everything" in str(excinfo.value)

    def test_first_elimination_decision_wins(self):
        from repro.instrument.plan import OptimizationPlan
        plan = OptimizationPlan()
        plan.merge_site(3, ELIM_SYMBOL)
        plan.merge_site(3, ELIM_RANGE)
        assert plan.eliminate[3] == ELIM_SYMBOL
        assert plan.summary()[ELIM_SYMBOL] == 1


class TestOptimizedExecution:
    def test_preheader_counts_once_per_loop_entry(self):
        source = """
        int m[10];
        int main() {
            int outer;
            int i;
            for (outer = 0; outer < 5; outer = outer + 1) {
                for (i = 0; i < 10; i = i + 1) {
                    m[i] = m[i] + outer;
                }
            }
            print(m[9]);
            return 0;
        }
        """
        asm = compile_source(source)
        _stmts, plan = build_plan(asm, mode="full")
        from repro.session import DebugSession
        session = DebugSession.from_asm(
            asm, strategy="BitmapInlineRegisters", plan=plan)
        session.mrs.enable()
        session.run()
        # inner-loop pre-header executes once per outer iteration
        assert session.cpu.tag_counts.get("phead_range", 0) == 5

    def test_overflow_wraparound_not_miscounted(self):
        # §4.5.1: the measured implementation ignores overflow; verify
        # our loops stay within 32-bit bounds and hits remain exact
        from helpers import check_soundness
        source = """
        int a[10];
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) { a[i] = i * 100000; }
            print(a[9]);
            return 0;
        }
        """
        check_soundness(source, "BitmapInlineRegisters",
                        [("a", 0, 40)])
