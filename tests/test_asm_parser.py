"""Unit tests for the assembly parser: operands, synthetics, errors."""

import pytest

from repro.asm.ast import (AsmInsn, AsmSyntaxError, Directive, Imm, Label,
                           Mem, Reg, Sym)
from repro.asm.parser import parse
from repro.isa.registers import REGISTER_IDS


def parse_one(line):
    stmts = parse(line)
    assert len(stmts) == 1, stmts
    return stmts[0]


def insns(text):
    return [s for s in parse(text) if isinstance(s, AsmInsn)]


class TestOperands:
    def test_registers(self):
        insn = parse_one("add %o0, %o1, %o2")
        assert [op.rid for op in insn.ops] == [
            REGISTER_IDS["%o0"], REGISTER_IDS["%o1"], REGISTER_IDS["%o2"]]

    def test_immediates(self):
        insn = parse_one("add %o0, -17, %o1")
        assert insn.ops[1] == Imm(-17)
        insn = parse_one("add %o0, 0x1F, %o1")
        assert insn.ops[1] == Imm(31)

    def test_memory_forms(self):
        assert parse_one("ld [%fp-20], %o0").ops[0] == \
            Mem(REGISTER_IDS["%fp"], disp=-20)
        assert parse_one("ld [%l0+%l1], %o0").ops[0] == \
            Mem(REGISTER_IDS["%l0"], index=REGISTER_IDS["%l1"])
        assert parse_one("ld [%l0], %o0").ops[0] == \
            Mem(REGISTER_IDS["%l0"])
        assert parse_one("ld [%l0+8], %o0").ops[0] == \
            Mem(REGISTER_IDS["%l0"], disp=8)

    def test_hi_lo_relocations(self):
        insn = parse_one("sethi %hi(counter), %l0")
        assert insn.ops[0] == Sym("counter", 0, "hi")
        insn = parse_one("or %l0, %lo(counter+8), %l0")
        assert insn.ops[1] == Sym("counter", 8, "lo")

    def test_symbol_addend(self):
        insn = parse_one("call target")
        assert insn.ops[0] == Sym("target", 0)

    def test_monitor_registers(self):
        insn = parse_one("mov %g6, %m2")
        assert insn.ops[2] == Reg("%m2")


class TestSynthetics:
    def test_mov(self):
        insn = parse_one("mov 5, %o0")
        assert insn.mnemonic == "or" and insn.ops[0] == Reg("%g0")

    def test_cmp(self):
        insn = parse_one("cmp %o0, 3")
        assert insn.mnemonic == "subcc"
        assert insn.ops[2] == Reg("%g0")

    def test_tst(self):
        insn = parse_one("tst %g2")
        assert insn.mnemonic == "orcc"

    def test_set_small_immediate_is_one_insn(self):
        out = insns("set 100, %o0")
        assert len(out) == 1 and out[0].mnemonic == "or"

    def test_set_large_immediate_expands(self):
        out = insns("set 0x12345678, %o0")
        assert [i.mnemonic for i in out] == ["sethi", "or"]

    def test_set_aligned_immediate_skips_or(self):
        out = insns("set 0xA0000000, %o0")
        assert [i.mnemonic for i in out] == ["sethi"]

    def test_set_symbol_always_two_insns(self):
        out = insns("set counter, %o0")
        assert [i.mnemonic for i in out] == ["sethi", "or"]

    def test_ret_retl(self):
        insn = parse_one("ret")
        assert insn.mnemonic == "jmpl" and insn.ops[0] == Reg("%i7")
        insn = parse_one("retl")
        assert insn.ops[0] == Reg("%o7")

    def test_clr_register_and_memory(self):
        assert parse_one("clr %o0").mnemonic == "or"
        assert parse_one("clr [%fp-4]").mnemonic == "st"

    def test_inc_dec_neg(self):
        assert parse_one("inc %o0").mnemonic == "add"
        assert parse_one("dec %o0").mnemonic == "sub"
        assert parse_one("neg %o0").mnemonic == "sub"

    def test_jmp(self):
        insn = parse_one("jmp %l0+8")
        assert insn.mnemonic == "jmpl" and insn.ops[2] == Reg("%g0")

    def test_restore_bare(self):
        insn = parse_one("restore")
        assert len(insn.ops) == 3

    def test_branch_aliases(self):
        assert parse_one("b target").mnemonic == "ba"
        assert parse_one("bz target").mnemonic == "be"


class TestAnnulAndLabels:
    def test_annul_suffix(self):
        insn = parse_one("ba,a target")
        assert insn.annul is True
        insn = parse_one("bne,a target")
        assert insn.annul and insn.mnemonic == "bne"

    def test_labels_and_multiple_per_line(self):
        stmts = parse("foo: bar: nop")
        assert isinstance(stmts[0], Label) and stmts[0].name == "foo"
        assert isinstance(stmts[1], Label) and stmts[1].name == "bar"
        assert isinstance(stmts[2], AsmInsn)

    def test_dot_labels(self):
        stmt = parse_one(".Lmrs_skip_3:")
        assert isinstance(stmt, Label) and stmt.name == ".Lmrs_skip_3"


class TestDirectivesAndTags:
    def test_word_directive(self):
        stmt = parse_one(".word 1, 2, counter")
        assert isinstance(stmt, Directive)
        assert stmt.args == (1, 2, Sym("counter", 0))

    def test_stabs_directive(self):
        stmt = parse_one('.stabs "x", local, -20, 4')
        assert stmt.args[0] == "x"
        assert stmt.args[2] == -20

    def test_tag_directive_sets_instruction_tags(self):
        stmts = parse("\tnop\n\t.tag check\n\tnop\n\t.tag orig\n\tnop")
        tags = [s.tag for s in stmts if isinstance(s, AsmInsn)]
        assert tags == ["orig", "check", "orig"]

    def test_comment_stripping(self):
        insn = parse_one("add %o0, 1, %o0   ! increment")
        assert insn.mnemonic == "add"

    def test_comment_inside_stab_string_kept(self):
        stmt = parse_one('.stabs "weird!name", local, -4, 4')
        assert stmt.args[0] == "weird!name"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "frobnicate %o0",
        "ld [%q9], %o0",
        "add %o0, %nosuch, %o0",
        "ld [%fp-%o0], %o0",
    ])
    def test_bad_input_raises(self, bad):
        with pytest.raises(AsmSyntaxError):
            parse(bad)

    def test_error_carries_line_number(self):
        try:
            parse("nop\nnop\nbadinsn %o0")
        except AsmSyntaxError as exc:
            assert exc.line_no == 3
        else:
            raise AssertionError("expected syntax error")
