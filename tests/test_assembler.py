"""Unit tests for the two-pass assembler and loader."""

import pytest

from repro.asm.assembler import (DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE,
                                 assemble)
from repro.asm.ast import AsmSyntaxError
from repro.asm.loader import load_program, run_source
from repro.isa import instructions as I

SIMPLE = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        set counter, %l0
        ld [%l0], %l1
        add %l1, 1, %l1
        st %l1, [%l0]
        mov %l1, %i0
        ret
        restore
        .endproc
        .data
counter: .word 41
table:  .word 1, 2, 3, end_marker
buffer: .skip 10
        .align 8
aligned: .word 0
end_marker: .word 0
"""


class TestLayout:
    def test_text_addresses(self):
        program = assemble(SIMPLE)
        assert program.labels["main"] == DEFAULT_TEXT_BASE
        assert program.text_size() == 4 * len(program.insns)

    def test_data_addresses_sequential(self):
        program = assemble(SIMPLE)
        counter = program.labels["counter"]
        assert counter == DEFAULT_DATA_BASE
        assert program.labels["table"] == counter + 4
        assert program.labels["buffer"] == counter + 20

    def test_skip_rounds_to_words(self):
        program = assemble(SIMPLE)
        # buffer is 10 bytes, rounded to 12
        assert program.labels["aligned"] % 8 == 0

    def test_word_with_symbol_initializer(self):
        program = assemble(SIMPLE)
        table = program.labels["table"]
        words = dict(program.data_words)
        assert words[table] == 1
        assert words[table + 12] == program.labels["end_marker"]

    def test_function_records(self):
        program = assemble(SIMPLE)
        func = program.function_named("main")
        assert func.address == program.labels["main"]
        assert func.end_index > func.start_index

    def test_set_resolves_full_address(self):
        code, out, cpu = run_source(SIMPLE)
        assert code == 42

    def test_data_image_loaded(self):
        program = assemble(SIMPLE)
        loaded = load_program(program)
        assert loaded.cpu.mem.read_word(program.labels["counter"]) == 41


class TestBranches:
    def test_forward_and_backward_targets(self):
        source = """
        .text
        .proc main
main:
        save %sp, -96, %sp
        mov 3, %l0
        mov 0, %l1
.loop:
        add %l1, %l0, %l1
        sub %l0, 1, %l0
        tst %l0
        bne .loop
        nop
        mov %l1, %i0
        ret
        restore
        .endproc
"""
        code, _, _ = run_source(source)
        assert code == 6

    def test_undefined_symbol_raises(self):
        with pytest.raises(AsmSyntaxError):
            assemble("\t.text\n\tcall nowhere\n\tnop\n")

    def test_branch_targets_are_absolute(self):
        source = """
        .text
target: nop
        ba target
        nop
"""
        program = assemble(source)
        branch = [i for i in program.insns
                  if isinstance(i, I.BranchInsn)][0]
        assert branch.target == program.labels["target"]


class TestStabs:
    SOURCE = """
        .text
        .proc f
f:
        save %sp, -112, %sp
        .stabs "x", local, -4, 4
        .stabs "arr", local, -44, 40, 4
        .stabs "p", param, -48, 4
        .stabs "r", register, %l0, 4
        ret
        restore
        .endproc
        .data
gvar:   .skip 8
        .stabs "g", global, gvar, 4
        .stabs "g2", global, gvar+4, 4
"""

    def test_local_and_param_entries(self):
        program = assemble(self.SOURCE)
        x = program.symtab.lookup("x", "f")
        assert x.kind == "local" and x.offset == -4 and x.size == 4
        p = program.symtab.lookup("p", "f")
        assert p.kind == "param"

    def test_array_entry_with_elem(self):
        program = assemble(self.SOURCE)
        arr = program.symtab.lookup("arr", "f")
        assert arr.size == 40 and arr.elem == 4

    def test_register_entry(self):
        program = assemble(self.SOURCE)
        r = program.symtab.lookup("r", "f")
        assert r.kind == "register" and r.reg is not None

    def test_global_entries_resolved(self):
        program = assemble(self.SOURCE)
        g = program.symtab.lookup("g")
        g2 = program.symtab.lookup("g2")
        assert g.address == program.labels["gvar"]
        assert g2.address == g.address + 4

    def test_scope_resolution_prefers_local(self):
        source = self.SOURCE.replace('.stabs "x", local',
                                     '.stabs "g", local')
        program = assemble(source)
        entry = program.symtab.lookup("g", "f")
        assert entry.kind == "local"
        entry = program.symtab.lookup("g")
        assert entry.kind == "global"

    def test_covering_lookups(self):
        program = assemble(self.SOURCE)
        arr = program.symtab.local_at("f", -24)
        assert arr is not None and arr.name == "arr"
        assert program.symtab.local_at("f", -200) is None
        g = program.symtab.global_at(program.labels["gvar"])
        assert g is not None and g.name == "g"


class TestErrors:
    def test_instruction_in_data_section(self):
        with pytest.raises(AsmSyntaxError):
            assemble("\t.data\n\tnop\n")

    def test_unknown_directive(self):
        with pytest.raises(AsmSyntaxError):
            assemble("\t.frobnicate 1\n")

    def test_missing_entry_point(self):
        program = assemble("\t.text\nf:\tnop\n")
        with pytest.raises(ValueError):
            load_program(program)

    def test_alu_with_absolute_symbol_rejected(self):
        with pytest.raises(AsmSyntaxError):
            assemble("\t.text\n\tadd %o0, counter, %o0\n"
                     "\t.data\ncounter: .word 0\n")
