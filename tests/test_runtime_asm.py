"""Direct tests of the generated monitor library routines: call them
with a hand-set %g4 and verify lookup behaviour against the bitmap."""

from repro.asm.assembler import assemble
from repro.asm.loader import load_program
from repro.core.bitmap import SegmentedBitmap
from repro.core.layout import MonitorLayout
from repro.core.runtime_asm import (INVALID_SEGMENT, check_routine,
                                    library_source, miss_routine)
from repro.isa.registers import REGISTER_IDS
from repro.machine.traps import TRAP_MONITOR_HIT


def harness(extra_lines, target_addr, layout=None):
    """Build a program that calls one library routine with %g4 set."""
    layout = layout or MonitorLayout()
    source = """
        .text
        .proc main
main:
        save %%sp, -96, %%sp
        set %d, %%g4
        call __routine
        nop
        mov 0, %%i0
        ret
        restore
        .endproc
__routine:
""" % target_addr
    source += "\n".join(extra_lines) + "\n"
    program = assemble(source)
    loaded = load_program(program)
    hits = []

    def on_hit(cpu):
        hits.append((cpu.regs.read(REGISTER_IDS["%g4"]),
                     cpu.regs.read(REGISTER_IDS["%g6"])))

    loaded.cpu.trap_handlers[TRAP_MONITOR_HIT] = on_hit
    return loaded, hits, layout


def routine_body(lines):
    """Library routine lines, dropping the entry label (the harness
    provides ``__routine:``)."""
    return [line for line in lines[1:]]


class TestCheckRoutine:
    def test_miss_when_unmonitored(self):
        layout = MonitorLayout()
        lines = routine_body(check_routine(layout, 4))
        loaded, hits, layout = harness(lines, 0x10004000, layout)
        assert loaded.run() == 0
        assert hits == []

    def test_hit_when_monitored(self):
        layout = MonitorLayout()
        lines = routine_body(check_routine(layout, 4))
        loaded, hits, layout = harness(lines, 0x10004000, layout)
        bitmap = SegmentedBitmap(loaded.cpu.mem, layout)
        from repro.core.regions import MonitoredRegion
        bitmap.set_region(MonitoredRegion(0x10004000, 4))
        assert loaded.run() == 0
        assert hits == [(0x10004000, 4)]

    def test_adjacent_word_not_hit(self):
        layout = MonitorLayout()
        lines = routine_body(check_routine(layout, 4))
        loaded, hits, layout = harness(lines, 0x10004004, layout)
        bitmap = SegmentedBitmap(loaded.cpu.mem, layout)
        from repro.core.regions import MonitoredRegion
        bitmap.set_region(MonitoredRegion(0x10004000, 4))
        loaded.run()
        assert hits == []

    def test_byte_routine_reports_size_one(self):
        layout = MonitorLayout()
        lines = routine_body(check_routine(layout, 1))
        loaded, hits, layout = harness(lines, 0x10004000, layout)
        bitmap = SegmentedBitmap(loaded.cpu.mem, layout)
        from repro.core.regions import MonitoredRegion
        bitmap.set_region(MonitoredRegion(0x10004000, 4))
        loaded.run()
        assert hits == [(0x10004000, 1)]

    def test_read_routine_sets_read_flag(self):
        layout = MonitorLayout()
        lines = routine_body(check_routine(layout, 4, is_read=True))
        loaded, hits, layout = harness(lines, 0x10004000, layout)
        bitmap = SegmentedBitmap(loaded.cpu.mem, layout)
        from repro.core.regions import MonitoredRegion
        bitmap.set_region(MonitoredRegion(0x10004000, 4))
        loaded.run()
        assert hits == [(0x10004000, 4 | 0x100)]


class TestMissRoutine:
    def _run_miss(self, monitored):
        layout = MonitorLayout()
        lines = routine_body(miss_routine(layout, 2, 4))
        target = 0x10004000
        loaded, hits, layout = harness(lines, target, layout)
        if monitored:
            bitmap = SegmentedBitmap(loaded.cpu.mem, layout)
            from repro.core.regions import MonitoredRegion
            bitmap.set_region(MonitoredRegion(target, 4))
        regs = loaded.cpu.regs
        regs.write(REGISTER_IDS["%g6"], layout.segment_of(target))
        regs.write(REGISTER_IDS["%m2"], INVALID_SEGMENT)
        loaded.run()
        return hits, regs.read(REGISTER_IDS["%m2"]), layout

    def test_unmonitored_segment_updates_cache(self):
        hits, cache, layout = self._run_miss(monitored=False)
        assert hits == []
        assert cache == layout.segment_of(0x10004000)

    def test_monitored_segment_never_cached(self):
        hits, cache, layout = self._run_miss(monitored=True)
        assert hits == [(0x10004000, 4)]
        assert cache == INVALID_SEGMENT


class TestLibrarySource:
    def test_entry_points_present(self):
        layout = MonitorLayout()
        text = library_source(layout, with_cache=True, with_reads=True)
        for name in ("__mrs_check_w4", "__mrs_check_w1", "__mrs_check_w8",
                     "__mrs_check_r4", "__mrs_miss_0_w4",
                     "__mrs_miss_3_w1"):
            assert name + ":" in text

    def test_library_assembles_standalone(self):
        layout = MonitorLayout()
        text = "\t.text\n\t.proc main\nmain:\n\tret\n\tnop\n\t.endproc\n"
        text += library_source(layout, with_cache=True, with_reads=True)
        program = assemble(text)
        assert len(program.insns) > 100

    def test_segment_size_parameterizes_shift(self):
        small = library_source(MonitorLayout(128))
        large = library_source(MonitorLayout(1024))
        assert "srl %g4, 9," in small
        assert "srl %g4, 12," in large
