"""Wire-protocol unit tests: framing, typed messages, error payloads."""

import socket
import struct

import pytest

from repro.errors import (MrsTransactionError, ProtocolError, ReproError,
                          ServerError)
from repro.faults import SERVICE_CREATE
from repro.server.handlers import (RequestRouter, ServerConfig,
                                   fault_plan_from_spec, parse_condition)
from repro.server.manager import SessionManager
from repro.server.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                   Event, Request, Response, decode,
                                   encode, error_payload, read_frame,
                                   write_frame)


def roundtrip(message):
    frame = encode(message)
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    return decode(frame[4:])


class TestMessageRoundTrip:
    def test_request(self):
        message = Request(seq=3, command="launch",
                          arguments={"source": "int main() {}",
                                     "lang": "C"})
        assert roundtrip(message) == message

    def test_request_default_arguments(self):
        assert roundtrip(Request(seq=1, command="threads")) == \
            Request(seq=1, command="threads", arguments={})

    def test_response_success(self):
        message = Response(seq=9, request_seq=3, command="launch",
                           success=True, body={"sessionId": "s1"})
        assert roundtrip(message) == message

    def test_response_error(self):
        message = Response(seq=2, request_seq=1, command="continue",
                           success=False,
                           error={"error": "ServerError",
                                  "message": "unknown session",
                                  "context": {"session": "s9"}})
        assert roundtrip(message) == message

    def test_event(self):
        message = Event(seq=7, event="monitorHit",
                        body={"address": 0x10004000, "size": 4,
                              "isRead": False, "sessionId": "s1"})
        assert roundtrip(message) == message


class TestDecodeRejection:
    def test_not_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode(b"\xff\xfe not json")
        assert excinfo.value.context["reason"] == "json"

    def test_not_an_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode(b"[1, 2, 3]")
        assert excinfo.value.context["reason"] == "shape"

    def test_unknown_type_tag(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode(b'{"type": "telegram", "seq": 1}')
        assert excinfo.value.context["reason"] == "unknown"

    @pytest.mark.parametrize("payload,field", [
        (b'{"type": "request", "command": "launch"}', "seq"),
        (b'{"type": "request", "seq": 1}', "command"),
        (b'{"type": "response", "seq": 1, "request_seq": 1, '
         b'"command": "x"}', "success"),
        (b'{"type": "event", "seq": 1}', "event"),
    ])
    def test_missing_field(self, payload, field):
        with pytest.raises(ProtocolError) as excinfo:
            decode(payload)
        assert excinfo.value.context["field"] == field

    def test_mistyped_field(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode(b'{"type": "request", "seq": "one", "command": "x"}')
        assert excinfo.value.context == {"field": "seq", "reason": "type"}


class TestFraming:
    def test_write_read_roundtrip(self):
        left, right = socket.socketpair()
        try:
            write_frame(left, b'{"hello": 1}')
            assert read_frame(right) == b'{"hello": 1}'
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert read_frame(right) is None
        finally:
            right.close()

    def test_oversized_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError) as excinfo:
                read_frame(right)
            assert excinfo.value.context["reason"] == "oversized"
            assert excinfo.value.context["frame_size"] == \
                MAX_FRAME_BYTES + 1
        finally:
            left.close()
            right.close()

    def test_custom_limit(self):
        left, right = socket.socketpair()
        try:
            write_frame(left, b"x" * 64)
            with pytest.raises(ProtocolError):
                read_frame(right, max_bytes=16)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 100) + b"only this much")
            left.close()
            with pytest.raises(ProtocolError) as excinfo:
                read_frame(right)
            assert excinfo.value.context["reason"] == "truncated"
        finally:
            right.close()


class TestErrorPayload:
    def test_plain_exception(self):
        payload = error_payload(ValueError("boom"))
        assert payload == {"error": "ValueError", "message": "boom"}

    def test_repro_error_context_is_preserved(self):
        exc = ServerError("capacity exhausted", reason="capacity",
                          max_sessions=4)
        payload = error_payload(exc)
        assert payload["error"] == "ServerError"
        assert payload["context"]["reason"] == "capacity"
        assert payload["context"]["max_sessions"] == 4

    def test_tuples_become_lists_and_cause_is_chained(self):
        try:
            try:
                raise ValueError("inner")
            except ValueError as inner:
                raise MrsTransactionError("rolled back",
                                          region=(0x1000, 8)) from inner
        except MrsTransactionError as exc:
            payload = error_payload(exc)
        assert payload["context"]["region"] == [0x1000, 8]
        assert payload["cause"] == {"error": "ValueError",
                                    "message": "inner"}

    def test_non_jsonable_context_falls_back_to_repr(self):
        payload = error_payload(ReproError("x", obj=object()))
        assert payload["context"]["obj"].startswith("<object")


class TestConditionsAndFaultSpecs:
    @pytest.mark.parametrize("text,value,expected", [
        ("== 5", 5, True), ("== 5", 4, False),
        ("!= 0", 1, True), ("< 3", 2, True),
        (">= -2", -2, True), ("> 10", 10, False),
    ])
    def test_parse_condition(self, text, value, expected):
        assert parse_condition(text)(value) is expected

    def test_bad_condition_rejected(self):
        with pytest.raises(ProtocolError):
            parse_condition("import os")

    def test_fault_plan_from_spec(self):
        plan = fault_plan_from_spec({
            "schedule": {SERVICE_CREATE: [0]},
            "maxInstructions": 5000})
        assert plan.max_instructions == 5000
        with pytest.raises(ReproError):
            plan.trip(SERVICE_CREATE)
        plan.trip(SERVICE_CREATE)  # occurrence 1 does not fire


class TestNegotiation:
    def router(self, **kwargs):
        config = ServerConfig(**kwargs)
        manager = SessionManager(max_sessions=config.max_sessions,
                                 workers=config.workers)
        return RequestRouter(manager, config)

    def dispatch(self, router, command, arguments):
        seq = iter(range(1, 100))
        return router.dispatch(
            Request(seq=1, command=command, arguments=arguments),
            lambda event, body: None, lambda: next(seq))

    def test_initialize_negotiates_and_advertises(self):
        response = self.dispatch(self.router(), "initialize",
                                 {"protocolVersion": PROTOCOL_VERSION})
        assert response.success
        assert response.body["protocolVersion"] == PROTOCOL_VERSION
        capabilities = response.body["capabilities"]
        assert capabilities["supportsDataBreakpoints"] is True
        assert capabilities["executionQuota"] > 0

    def test_unsupported_version_is_a_structured_error(self):
        response = self.dispatch(self.router(), "initialize",
                                 {"protocolVersion": 99})
        assert not response.success
        assert response.error["context"]["requested"] == 99
        assert PROTOCOL_VERSION in \
            response.error["context"]["supported"]

    def test_unknown_command(self):
        response = self.dispatch(self.router(), "selfdestruct", {})
        assert not response.success
        assert response.error["context"]["reason"] == "unknown_command"

    def test_missing_argument(self):
        response = self.dispatch(self.router(), "launch", {})
        assert not response.success
        assert response.error["error"] == "ProtocolError"
        assert response.error["context"]["field"] == "source"
