"""Tests for repro.analysis: call graph, points-to, value ranges, the
``ipa`` elimination pass with provenance/statistics, and the watchpoint
predicate dependency pruner."""

import pytest

from repro.analysis import _label_layout
from repro.analysis.callgraph import (TRAP_SBRK, build_callgraph,
                                      trap_code)
from repro.analysis.pointsto import HEAP, PointsTo, is_label
from repro.analysis.prune import predicate_invariant
from repro.analysis.ranges import RangeAnalysis
from repro.asm.assembler import assemble
from repro.asm.parser import parse
from repro.instrument.plan import ELIM_IPA, ELIM_SYMBOL
from repro.instrument.writes import enumerate_write_sites
from repro.ir.build import apply_promotion, build_ir
from repro.ir.ssa import convert_to_ssa
from repro.minic.codegen import compile_source
from repro.optimizer.asserts import insert_asserts
from repro.optimizer.pipeline import build_plan
from repro.optimizer.symbols import collect_static_symbols


def analyzed(source, lang="C"):
    """Compile and run the full IR pipeline the ipa pass sees."""
    asm = compile_source(source, lang=lang)
    statements = parse(asm)
    enumerate_write_sites(statements, lang)
    symbols = collect_static_symbols(statements)
    funcs, escaped = build_ir(statements, symbols)
    apply_promotion(funcs, escaped)
    ssa_infos = []
    for func in funcs:
        insert_asserts(func)
        info = convert_to_ssa(func)
        if info.order:
            ssa_infos.append(info)
    return asm, statements, symbols, funcs, ssa_infos


INTERPROC = """
int accum;
int table[10];
int *cursor;

int bump(int *dest, int amount) {
    *dest = *dest + amount;
    return *dest;
}

int main() {
    int i;
    cursor = &accum;
    *cursor = 1;
    for (i = 0; i < 10; i = i + 1) { table[i] = bump(cursor, i); }
    print(accum);
    return 0;
}
"""

HEAPY = """
int anchor;
int main() {
    int *block;
    int i;
    block = sbrk(40);
    block[0] = 11;        /* straight-line heap stores: the loop pass */
    block[3] = 22;        /* cannot touch them, so they reach ipa     */
    for (i = 0; i < 10; i = i + 1) { block[i] = block[i] + i; }
    anchor = block[9];
    print(anchor);
    return 0;
}
"""


class TestCallGraph:
    def test_edges_and_sites(self):
        _asm, stmts, _sym, funcs, _ssa = analyzed(INTERPROC)
        graph = build_callgraph(funcs, stmts)
        assert set(graph.funcs) == {"bump", "main"}
        assert "bump" in graph.callees["main"]
        assert all(site.caller == "main"
                   for site in graph.callers["bump"])
        assert graph.is_defined("bump")
        assert not graph.is_defined("printf")

    def test_sbrk_is_a_trap_not_a_call(self):
        _asm, stmts, _sym, funcs, _ssa = analyzed(HEAPY)
        graph = build_callgraph(funcs, stmts)
        assert graph.callers.get("sbrk") is None
        traps = [trap_code(op, stmts)
                 for func in funcs
                 for block in func.reachable_blocks()
                 for op in block.ops if op.kind == "trap"]
        assert TRAP_SBRK in traps


class TestPointsTo:
    def _solved(self, source):
        _asm, stmts, _sym, funcs, ssa = analyzed(source)
        graph = build_callgraph(funcs, stmts)
        pt = PointsTo(stmts, funcs, graph, ssa)
        pt.run()
        return stmts, funcs, pt

    def _stores(self, funcs):
        return [access.op for func in funcs for access in func.accesses
                if access.kind == "st" and access.op.kind == "st"
                and access.op.site is not None]

    def test_pointer_through_call_resolves_to_label(self):
        stmts, funcs, pt = self._solved(INTERPROC)
        atom_sets = [pt.store_atoms(op) for op in self._stores(funcs)]
        # some store (the *dest in bump, via cursor=&accum) is proven
        # to stay within the G_accum label
        assert any(atoms and all(is_label(a) for a in atoms)
                   for atoms in atom_sets)

    def test_sbrk_result_is_heap(self):
        stmts, funcs, pt = self._solved(HEAPY)
        atom_sets = [pt.store_atoms(op) for op in self._stores(funcs)]
        assert any(HEAP in atoms for atoms in atom_sets)


class TestRanges:
    def test_monotonic_index_is_bounded_below(self):
        source = """
        int a[16];
        int main() {
            int i;
            for (i = 0; i < 16; i = i + 1) { a[i] = i; }
            print(a[15]);
            return 0;
        }
        """
        _asm, stmts, _sym, funcs, ssa = analyzed(source)
        graph = build_callgraph(funcs, stmts)
        ranges = RangeAnalysis(stmts, funcs, graph, ssa)
        ranges.run()
        offsets = []
        for func in funcs:
            for access in func.accesses:
                if access.kind == "st" and access.op.kind == "st" \
                        and access.op.site is not None:
                    offsets.append(ranges.store_offset(access.op))
        syms = [off for off in offsets
                if off is not None and off[0] == "sym"]
        assert syms, "no store offset resolved to label+interval"
        assert any(off[2] is not None and off[2] >= 0 for off in syms)


class TestIpaPass:
    def test_ipa_eliminates_more_than_full(self):
        asm = compile_source(INTERPROC)
        _stmts, full_plan = build_plan(asm, mode="full")
        _stmts, ipa_plan = build_plan(asm, mode="ipa")
        assert len(ipa_plan.eliminate) > len(full_plan.eliminate)
        assert ELIM_IPA in ipa_plan.eliminate.values()

    def test_every_ipa_site_has_provenance_and_registration(self):
        asm = compile_source(INTERPROC)
        _stmts, plan = build_plan(asm, mode="ipa")
        registered = {site for sites in plan.symbol_sites.values()
                      for site in sites}
        # loop-eliminated sites re-insert through pre-header guards
        registered |= {site for sites in plan.loop_sites.values()
                       for site in sites}
        for site, kind in plan.eliminate.items():
            assert site in plan.why_eliminated
            assert site in registered, \
                "eliminated site %d not re-insertable" % site
            if kind == ELIM_IPA:
                assert plan.why_eliminated[site].startswith("ipa:")
            if kind == ELIM_SYMBOL:
                assert plan.why_eliminated[site].startswith("symbol:")

    def test_heap_stores_refused(self):
        asm = compile_source(HEAPY)
        _stmts, plan = build_plan(asm, mode="ipa")
        stats = plan.pass_stats["ipa"]
        assert stats.guarded >= 1  # the block[i] scatter into sbrk space
        # no heap-going store may be ipa-eliminated
        for site, kind in plan.eliminate.items():
            if kind == ELIM_IPA:
                fact = plan.write_facts.get(site)
                assert fact is not None
                assert all(item[0] == "entry" for item in fact)

    def test_adversarial_alias_mix_refused(self):
        # one routine fills both a global array and a heap block: the
        # shared store must be refused (its target set is not
        # label-only), never eliminated by ipa
        source = """
        int table[8];
        int poke(int *dest, int k) {
            dest[k % 8] = k;   /* straight-line: reaches the ipa pass */
            return k;
        }
        int main() {
            int *heap;
            poke(table, 3);
            heap = sbrk(32);
            poke(heap, 5);
            print(table[3]);
            return 0;
        }
        """
        asm = compile_source(source)
        _stmts, plan = build_plan(asm, mode="ipa")
        stats = plan.pass_stats["ipa"]
        assert stats.guarded >= 1
        for site, kind in plan.eliminate.items():
            assert kind != ELIM_IPA or \
                "heap" not in (plan.why_eliminated.get(site) or "")

    def test_pass_stats_reset_between_builds(self):
        asm = compile_source(INTERPROC)
        _stmts, plan1 = build_plan(asm, mode="ipa")
        first = {name: stats.as_dict()
                 for name, stats in plan1.pass_stats.items()}
        _stmts, plan2 = build_plan(asm, mode="ipa")
        second = {name: stats.as_dict()
                  for name, stats in plan2.pass_stats.items()}
        assert first == second  # fresh plan, fresh counters, same input
        assert plan2.pass_stats["symbol"].seen > 0

    def test_label_order_matches_assembled_addresses(self):
        asm = compile_source(INTERPROC)
        statements = parse(asm)
        symbols = collect_static_symbols(statements)
        _extent, order = _label_layout(symbols)
        program = assemble(asm)
        addresses = {}
        for label in order:
            entries = symbols.globals_by_label[label]
            entry = program.symtab.lookup(entries[0].name)
            addresses[label] = entry.address - entries[0].label_offset
        ranked = sorted(order, key=order.get)
        assert ranked == sorted(addresses, key=addresses.get)

    def test_write_facts_cover_all_store_sites(self):
        asm = compile_source(INTERPROC)
        statements, plan = build_plan(asm, mode="ipa")
        sites = enumerate_write_sites(parse(asm))
        assert set(plan.write_facts) == {s.site for s in sites}


class TestPredicateDependencies:
    def _symtab(self, source):
        return assemble(compile_source(source)).symtab

    def test_reads_recorded_for_globals(self):
        from repro.watchpoints.predicate import compile_predicate
        symtab = self._symtab(INTERPROC)
        pred = compile_predicate("accum > 3 && table[2] != 0",
                                 symtab=symtab)
        assert len(pred.reads) == 2
        assert not pred.dynamic_reads and not pred.uses_hit

    def test_computed_index_reads_whole_array(self):
        from repro.watchpoints.predicate import compile_predicate
        symtab = self._symtab(INTERPROC)
        pred = compile_predicate("table[accum % 10] > 0", symtab=symtab)
        table = symtab.lookup("table")
        assert (table.address, table.size) in pred.reads

    def test_hit_specials_and_derefs_flagged(self):
        from repro.watchpoints.predicate import compile_predicate
        symtab = self._symtab(INTERPROC)
        assert compile_predicate("$addr != 0", symtab=symtab).uses_hit
        assert compile_predicate("*(cursor) > 0",
                                 symtab=symtab).dynamic_reads

    def test_invariant_verdicts(self):
        from repro.watchpoints.predicate import compile_predicate
        source = """
        int a[8];
        int written;
        int untouched;
        int main() {
            int i;
            written = 2;
            for (i = 0; i < 8; i = i + 1) { a[i] = i; }
            print(a[7]);
            return 0;
        }
        """
        asm = compile_source(source)
        statements, plan = build_plan(asm, mode="ipa")
        symtab = assemble(asm).symtab
        inert = compile_predicate("untouched == 0", symtab=symtab)
        hot = compile_predicate("written == 2", symtab=symtab)
        hit = compile_predicate("untouched == 0 && $value > 1",
                                symtab=symtab)
        assert predicate_invariant(inert, plan, symtab)
        assert not predicate_invariant(hot, plan, symtab)
        assert not predicate_invariant(hit, plan, symtab)

    def test_engine_prunes_and_still_fires(self):
        from repro.debugger.debugger import Debugger
        source = """
        int a[8];
        int quiet;
        int main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { a[i] = i * 2; }
            print(a[7]);
            return 0;
        }
        """
        dbg = Debugger.for_source(source, optimize="ipa")
        true_wp = dbg.watch("a[3]", expr="quiet == 0")
        false_wp = dbg.watch("a[4]", expr="quiet != 0")
        dbg.run()
        assert true_wp.invariant and false_wp.invariant
        assert true_wp.stats.pruned == 1 and true_wp.stats.evals == 0
        assert len(true_wp.hits) == 1  # cached-true still fires
        assert false_wp.stats.pruned == 1 and not false_wp.hits

    def test_no_pruning_without_facts(self):
        from repro.debugger.debugger import Debugger
        source = """
        int a[8];
        int quiet;
        int main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { a[i] = i; }
            print(a[7]);
            return 0;
        }
        """
        dbg = Debugger.for_source(source, optimize="full")
        wp = dbg.watch("a[3]", expr="quiet == 0")
        dbg.run()
        assert not wp.invariant
        assert wp.stats.pruned == 0 and wp.stats.evals == 1


class TestModeErrors:
    def test_structured_mode_error(self):
        from repro.errors import OptimizeModeError, ReproError
        with pytest.raises(OptimizeModeError) as excinfo:
            build_plan(compile_source(HEAPY), mode="hyper")
        err = excinfo.value
        assert isinstance(err, ReproError)
        assert isinstance(err, ValueError)
        assert err.mode == "hyper"
        assert err.valid == ("sym", "full", "ipa")
