"""Regenerates E7: segmented-bitmap space overhead (§3's ~3% claim).

Full-scale reproduction: ``python -m repro.eval.space``.
"""

from conftest import BENCH_SCALE, run_once
from repro.eval.space import measure_workload

WORKLOADS = ["022.li", "030.matrix300", "047.tomcatv"]


def test_space_fraction(benchmark):
    results = run_once(
        benchmark, lambda: {name: measure_workload(name, BENCH_SCALE)
                            for name in WORKLOADS})
    print()
    for name, row in results.items():
        print("%-18s bitmap %6d bytes over %6d data bytes = %.2f%%"
              % (name, row["bitmap_bytes"], row["data_bytes"],
                 100 * row["fraction"]))
        # "roughly 3% of the total memory used by the program":
        # 1/32 = 3.125% plus segment rounding
        assert 0.025 <= row["fraction"] <= 0.08, name
