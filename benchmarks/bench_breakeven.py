"""Regenerates E8: the §3.3.3 segment-caching break-even analysis.

Full reproduction: ``python -m repro.eval.breakeven``.
"""

from conftest import run_once
from repro.eval.breakeven import (breakeven_full_fraction,
                                  compute_breakeven, cost_cache,
                                  cost_registers)


def test_breakeven_ranges(benchmark):
    results = run_once(benchmark, compute_breakeven)
    print("\nbreak-even full-lookup rate: C %.1f-%.1f%%, F %.1f-%.1f%%"
          % (*results["C"], *results["F"]))
    # the paper's qualitative conclusions:
    # 1. a break-even point exists in the tens of percent
    for low, high in results.values():
        assert 5.0 < low < high < 60.0
    # 2. FORTRAN's higher cache-miss rate lowers its break-even point
    assert results["F"][0] < results["C"][0]
    # 3. sanity of the cost model itself: with no full lookups the
    # cache wins; with all-full-lookups the registers variant wins
    for load_cost in (2.0, 8.0):
        assert cost_cache(0.0, 0.05, load_cost) < \
            cost_registers(0.0, load_cost)
        assert cost_cache(1.0, 0.05, load_cost) > \
            cost_registers(1.0, load_cost)
        # the crossover is where the costs meet
        point = breakeven_full_fraction(0.05, load_cost)
        assert abs(cost_cache(point, 0.05, load_cost)
                   - cost_registers(point, load_cost)) < 0.5
