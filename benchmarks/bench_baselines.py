"""Regenerates the §1/§3 baseline comparisons (E6).

Full-scale reproduction: ``python -m repro.eval.baselines``.
"""

from conftest import BENCH_SCALE, run_once
from repro.eval.baselines import (demonstrate_hardware_limit,
                                  measure_hashtable_overheads,
                                  measure_trap_factor, measure_vmprotect)
from repro.eval.overhead import WorkloadBench


def test_trap_factor(benchmark):
    factor = run_once(benchmark, measure_trap_factor)
    benchmark.extra_info["slowdown_factor"] = round(factor)
    print("\ndbx-style trap slowdown: %.0fx (paper: ~85,000x)" % factor)
    # "too slow for practical use": four to five orders of magnitude
    assert factor > 10_000


def test_hashtable_overheads(benchmark):
    workloads = ["022.li", "042.fpppp", "030.matrix300"]
    hashes = run_once(benchmark, measure_hashtable_overheads,
                      BENCH_SCALE, workloads)
    print("\nhash-table checks: " + ", ".join(
        "%s=%.0f%%" % kv for kv in hashes.items()))
    # hash-table checks cost much more than the segmented bitmap
    for name in workloads:
        bench = WorkloadBench(name, scale=BENCH_SCALE)
        bitmap = bench.overhead("BitmapInlineRegisters", enabled=True)
        assert hashes[name] > bitmap * 1.5, name
    # the worst cases reach into the hundreds of percent (paper: 209-642)
    assert max(hashes.values()) > 150.0


def test_hardware_capacity(benchmark):
    message = run_once(benchmark, demonstrate_hardware_limit)
    print("\n" + message)
    assert "watches 1 word" in message


def test_vmprotect(benchmark):
    result = run_once(benchmark, measure_vmprotect, BENCH_SCALE)
    print("\nVAX DEBUG page protection: %.0f%% overhead, %d false faults"
          % (result["overhead"], result["false_faults"]))
    # page sharing causes false faults, making this approach slow
    assert result["false_faults"] > 0
    assert result["overhead"] > 100.0
    assert result["hits"] > 0
