"""Regenerates Figure 3: segment cache locality vs segment size.

Full-scale reproduction: ``python -m repro.eval.figure3``.
"""

from conftest import BENCH_SCALE, run_once
from repro.eval.figure3 import format_series, measure_figure3
from repro.eval.overhead import average

#: a representative mix: stack-heavy, BSS-heavy, heap-heavy
WORKLOADS = ["022.li", "030.matrix300", "008.espresso"]
SIZES = [32, 64, 128, 256, 512, 1024]


def test_figure3_series(benchmark):
    results = run_once(benchmark, measure_figure3, BENCH_SCALE,
                       WORKLOADS, SIZES)
    print()
    print(format_series(results))
    rates = {size: average(list(row.values()))
             for size, row in results.items()}
    # locality improves with segment size...
    assert rates[128] > rates[32]
    # ...the 128-word hit rate is already high (the paper's choice)...
    assert rates[128] > 0.80
    # ...and growing segments past 128 words buys little (§3.1)
    assert rates[1024] - rates[128] < 0.15
