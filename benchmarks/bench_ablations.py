"""Ablation benchmarks for the reproduction's own design choices."""

from conftest import BENCH_SCALE, run_once
from repro.eval.ablations import (sweep_cache_size, sweep_loop_safety,
                                  sweep_window_bulk)


def test_cache_size_ablation(benchmark):
    results = run_once(benchmark, sweep_cache_size, "001.gcc1.35",
                       BENCH_SCALE)
    print("\ncache-size sweep:", {k // 1024: round(v, 1)
                                  for k, v in results.items()})
    # overheads stay in the same regime; cache effects are alignment
    # noise, not order-of-magnitude shifts (§3.3.1)
    values = list(results.values())
    assert max(values) < 3 * max(min(values), 1.0)


def test_window_bulk_ablation(benchmark):
    results = run_once(benchmark, sweep_window_bulk, BENCH_SCALE)
    print("\nwindow-bulk sweep:",
          {k: round(v["overhead_pct"], 1) for k, v in results.items()})
    # bulk spilling makes the *baseline* cheaper (fewer traps during
    # descent), the property the default relies on
    assert results[4]["baseline_cycles"] < results[1]["baseline_cycles"]


def test_loop_safety_ablation(benchmark):
    results = run_once(benchmark, sweep_loop_safety, "030.matrix300",
                       BENCH_SCALE)
    print("\nloop-safety sweep:", results)
    optimistic = results["optimistic"]
    guarded = results["alias-guarded"]
    # the alias guard can only remove eliminations, never add them
    assert guarded["range"] <= optimistic["range"]
    assert guarded["li"] <= optimistic["li"]
    # the overflow guard changes nothing for in-range constant loops
    assert results["overflow-guarded"]["range"] == optimistic["range"]
