"""Regenerates Table 2: write-check elimination results.

Full-scale reproduction: ``python -m repro.eval.table2``.
"""

import pytest

from conftest import BENCH_SCALE, run_once
from repro.eval.table2 import (format_table, measure_table2,
                               measure_workload, summarize)
from repro.workloads import F_WORKLOADS, WORKLOAD_ORDER


@pytest.mark.parametrize("workload", ["030.matrix300", "022.li"])
def test_single_workload_elimination(benchmark, workload):
    row = run_once(benchmark, measure_workload, workload, BENCH_SCALE)
    benchmark.extra_info["eliminated_pct"] = round(row["total"], 1)
    if workload == "030.matrix300":
        # the paper's showcase: 100% of checks eliminated
        assert row["total"] >= 95.0
        assert row["range"] > 20.0
    else:
        # li: symbol-only elimination, nothing from loops
        assert row["sym"] > 50.0
        assert row["li"] + row["range"] < 10.0


def test_table2_rows(benchmark):
    results = run_once(benchmark, measure_table2, BENCH_SCALE,
                       WORKLOAD_ORDER)
    print()
    print(format_table(results))
    summary = summarize(results)

    # headline: "Data flow analysis eliminated an average of 79% of the
    # dynamic write checks" — shape: well over half
    assert summary["overall"]["total"] > 60.0
    # "For scientific programs such as the NAS kernels, analysis reduced
    # write checks by a factor of ten or more"
    scientific = [results[n]["total"] for n in
                  ("030.matrix300", "020.nasker")]
    assert all(total >= 90.0 for total in scientific)
    # FORTRAN programs gain more from loop optimization than C (§4.6)
    assert summary["F"]["range"] >= 0.0
    assert summary["F"]["full"] < summary["C"]["full"]
    # pre-header checks are rare relative to the checks they replace
    assert summary["overall"]["gen_li"] + \
        summary["overall"]["gen_range"] < 15.0
    # Full <= Sym on average: loop elimination pays for its checks
    assert summary["overall"]["full"] <= \
        summary["overall"]["sym_overhead"] + 1.0
