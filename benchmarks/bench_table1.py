"""Regenerates Table 1: MRS overhead per write-check implementation.

Full-scale reproduction: ``python -m repro.eval.table1``.
"""

import pytest

from conftest import BENCH_SCALE, run_once
from repro.eval.overhead import WorkloadBench
from repro.eval.table1 import format_table, measure_table1, summarize
from repro.workloads import WORKLOAD_ORDER

STRATEGIES = ["Bitmap", "BitmapInline", "BitmapInlineRegisters",
              "Cache", "CacheInline"]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_overhead(benchmark, strategy):
    """Times one instrumented run per strategy on a medium workload."""
    bench = WorkloadBench("030.matrix300", scale=BENCH_SCALE)
    bench.baseline()

    def run():
        return bench.overhead(strategy, enabled=True)

    overhead = run_once(benchmark, run)
    benchmark.extra_info["overhead_pct"] = round(overhead, 1)
    assert overhead > 0


def test_table1_rows(benchmark):
    """Regenerates the whole table (reduced scale) and checks its shape:
    the orderings the paper's conclusions rest on."""
    results = run_once(benchmark, measure_table1, BENCH_SCALE,
                       WORKLOAD_ORDER)
    print()
    print(format_table(results))
    summary = summarize(results)["overall"]

    # Disabled is far below any enabled configuration
    assert summary["Disabled"] < summary["CacheInline"]
    assert summary["Disabled"] < summary["BitmapInlineRegisters"]
    # reserved registers beat the plain procedure-call bitmap (§3.1)
    assert summary["BitmapInlineRegisters"] < summary["Bitmap"]
    # segment caching beats uncached lookup on average (§3.3.3)
    assert summary["Cache"] < summary["Bitmap"]
    assert summary["CacheInline"] < summary["Bitmap"]
    # the headline: checking every write is practical (tens of percent,
    # not the factors of prior approaches)
    assert summary["BitmapInlineRegisters"] < 120.0
    # li and gcc (write-dense C codes) are the most expensive programs
    bitmap = {name: row["Bitmap"] for name, row in results.items()}
    worst = sorted(bitmap, key=bitmap.get)[-2:]
    assert set(worst) <= {"022.li", "001.gcc1.35", "015.doduc"}
