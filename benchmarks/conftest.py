"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper at a
reduced workload scale (full scale: ``python -m repro.eval.<module>``).
``REPRO_BENCH_SCALE`` overrides the scale (default 0.4).
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))

#: a representative small/medium workload pair used where running all
#: ten would make the benchmark suite too slow
FAST_WORKLOADS = ["042.fpppp", "030.matrix300"]


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark *func* with a single round (simulations are slow and
    deterministic; statistical repetition adds nothing)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
