"""Regenerates the §3.3.1 nop-insertion cache experiment (Table 1's σ).

Full-scale reproduction: ``python -m repro.eval.nop_experiment``.
"""

from conftest import BENCH_SCALE, run_once
from repro.eval.nop_experiment import (format_table, measure_sigma,
                                       measure_workload)

WORKLOADS = ["042.fpppp", "013.spice2g6", "023.eqntott"]


def test_nop_regression(benchmark):
    results = run_once(
        benchmark, lambda: {name: measure_workload(name, BENCH_SCALE)
                            for name in WORKLOADS})
    print()
    print(format_table(results))
    for name, row in results.items():
        # overhead grows with inserted nops (positive slope)...
        assert row["slope"] > 0, name
        # ...monotonically at the ends of the sweep...
        assert row["nop32"] > row["nop2"], name
        # ...and residual sigma (cache alignment noise) is a modest
        # fraction of the overhead range, as in the paper's σ column
        spread = row["nop32"] - row["nop2"]
        assert row["sigma"] < max(spread, 1.0), name
