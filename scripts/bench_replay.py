#!/usr/bin/env python
"""Time-travel recording benchmark.

Runs two §6 workloads with a data breakpoint armed, once plain and
once under an active :class:`repro.replay.Recorder`, to price the
keyframe + write-trace overhead.  Then, from the recorded end state,
measures reverse-continue latency (restore nearest keyframe +
deterministic re-execution) walking hits newest-to-oldest, and
``last_write`` latency on the watched expression.

Usage::

    PYTHONPATH=src python scripts/bench_replay.py            # full run
    PYTHONPATH=src python scripts/bench_replay.py --smoke    # CI-sized
    PYTHONPATH=src python scripts/bench_replay.py -o BENCH_replay.json
"""

from __future__ import annotations

import argparse
import json
import time

from repro.debugger import Debugger
from repro.workloads import WORKLOADS, workload_source

#: (workload name, watched expression) — the Workload table carries no
#: watch metadata, so each benchmark names a global it knows the
#: workload writes: eqntott's PRNG seed churns on every rnd() call,
#: matrix300's result matrix is written throughout the multiply.
TARGETS = [
    ("023.eqntott", "__seed"),
    ("030.matrix300", "c[24]"),
]


def percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def make_debugger(name, scale, watch_expr):
    workload = WORKLOADS[name]
    debugger = Debugger.for_source(workload_source(name, scale),
                                   lang=workload.lang)
    debugger.watch(watch_expr, action="log")
    return debugger


def timed_run(debugger, stride):
    """Run to exit in *stride*-sized step chunks, returning wall time.

    The plain baseline is driven through the same chunked-stepping
    path the recorder uses (rather than ``cpu.run``'s watchdog loop),
    so the overhead percentage isolates keyframe capture + trace
    bookkeeping instead of differences in loop overhead.
    """
    begin = time.perf_counter()
    reason = "step"
    while reason == "step":
        reason = debugger.step(stride)
    elapsed = time.perf_counter() - begin
    if reason != "exited":
        raise SystemExit("workload did not run to exit: %r" % reason)
    return elapsed


def bench_workload(name, watch_expr, scale, stride, reverse_hits,
                   last_write_calls, repeats):
    # untimed warm-up so the plain run doesn't absorb interpreter
    # warm-up costs and skew the overhead percentage
    timed_run(make_debugger(name, scale, watch_expr), stride)

    # interleave plain/recorded repeats (best-of) so slow drift in
    # machine load biases both sides equally
    plain_samples = []
    recorded_samples = []
    for _ in range(repeats):
        plain_samples.append(
            timed_run(make_debugger(name, scale, watch_expr), stride))
        recorded = make_debugger(name, scale, watch_expr)
        recorder = recorded.record(stride=stride)
        begin = time.perf_counter()
        reason = recorded.run()
        recorded_samples.append(time.perf_counter() - begin)
        if reason != "exited":
            raise SystemExit("recorded run did not exit: %r" % reason)
    plain_s = min(plain_samples)
    recorded_s = min(recorded_samples)
    instructions = recorded.cpu.instructions
    trace_len = len(recorder.trace)

    reverse_ms = []
    for _ in range(min(reverse_hits, trace_len)):
        begin = time.perf_counter()
        reason = recorded.reverse_continue()
        reverse_ms.append((time.perf_counter() - begin) * 1e3)
        if reason == "replay-start":
            break

    last_write_ms = []
    for _ in range(last_write_calls):
        begin = time.perf_counter()
        recorded.last_write(watch_expr)
        last_write_ms.append((time.perf_counter() - begin) * 1e3)

    return {
        "workload": name,
        "watch": watch_expr,
        "scale": scale,
        "stride": stride,
        "instructions": instructions,
        "monitor_hits_traced": trace_len,
        "keyframes": len(recorder.keyframes),
        "plain_run_s": round(plain_s, 4),
        "recorded_run_s": round(recorded_s, 4),
        "recording_overhead_pct":
            round((recorded_s - plain_s) / plain_s * 100.0, 1),
        "reverse_continue_ms": {
            "samples": len(reverse_ms),
            "p50": round(percentile(reverse_ms, 0.50), 3),
            "p90": round(percentile(reverse_ms, 0.90), 3),
            "max": round(max(reverse_ms), 3) if reverse_ms else 0.0,
        },
        "last_write_ms": {
            "samples": len(last_write_ms),
            "p50": round(percentile(last_write_ms, 0.50), 3),
            "max": round(max(last_write_ms), 3) if last_write_ms else 0.0,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier")
    parser.add_argument("--stride", type=int, default=2000,
                        help="instructions between keyframes")
    parser.add_argument("--reverse-hits", type=int, default=25,
                        help="reverse-continue stops to sample")
    parser.add_argument("--last-write-calls", type=int, default=20)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per configuration (best-of)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (scale 0.3, few samples)")
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here")
    args = parser.parse_args()
    scale = 0.3 if args.smoke else args.scale
    reverse_hits = 5 if args.smoke else args.reverse_hits
    last_write_calls = 5 if args.smoke else args.last_write_calls
    repeats = 1 if args.smoke else args.repeats

    report = {"benchmark": "repro.replay", "workloads": [
        bench_workload(name, watch_expr, scale, args.stride,
                       reverse_hits, last_write_calls, repeats)
        for name, watch_expr in TARGETS
    ]}
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
