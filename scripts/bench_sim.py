#!/usr/bin/env python
"""Simulator throughput benchmark: per-step loop vs block fast path.

Each workload runs three ways:

* **plain** — the per-instruction interpreter loop (``fast_path=False``),
  the historical baseline every other benchmark is priced against;
* **fast**  — the basic-block fast path (decode-once compiled blocks);
* **armed** — instrumented with a live data breakpoint, where monitor
  check traps force block boundaries (the de-opt cost the selective
  fast path is designed to contain).

Every fast run is differentially compared against the plain run —
exit code, state digest, cycles, counters, memory image, output — so
the benchmark doubles as a divergence gate: any drift exits 2.

``--quick`` is the CI mode: small scale, one repeat, and a hard gate
that at least ``gate_min_workloads`` workloads clear the speedup floor
(both recorded in BENCH_sim.json).

Usage::

    PYTHONPATH=src python scripts/bench_sim.py -o BENCH_sim.json
    PYTHONPATH=src python scripts/bench_sim.py --quick     # CI gate
"""

from __future__ import annotations

import argparse
import json
import time

from repro.asm.assembler import assemble
from repro.asm.loader import load_program
from repro.debugger import Debugger
from repro.minic.codegen import compile_source
from repro.replay import state_digest
from repro.workloads import WORKLOADS, workload_source

#: (workload, watched expression for the armed run) — globals each
#: workload is known to write throughout its run
TARGETS = [
    ("023.eqntott", "__seed"),
    ("030.matrix300", "c[24]"),
    ("022.li", "hp"),
    ("042.fpppp", "gout[12]"),
]

#: CI gate: the fast path must beat the plain loop by at least this
#: factor on at least GATE_MIN_WORKLOADS workloads (floors are kept
#: deliberately below the recorded speedups — shared CI runners are
#: noisy; BENCH_sim.json records the actual measured trajectory)
SPEEDUP_FLOOR = 2.0
GATE_MIN_WORKLOADS = 2


def state_signature(loaded):
    """Everything a divergent engine could plausibly corrupt."""
    cpu = loaded.cpu
    return (
        cpu.exit_code, cpu.pc, cpu.npc, state_digest(cpu),
        cpu.cycles, cpu.instructions, cpu.loads, cpu.stores,
        cpu.traps_taken, tuple(sorted(cpu.tag_counts.items())),
        tuple(sorted(cpu.tag_cycles.items())),
        cpu.cache.hits, cpu.cache.misses,
        (cpu.icc_n, cpu.icc_z, cpu.icc_v, cpu.icc_c),
        tuple(sorted(cpu.mem.words.items())),
        tuple(loaded.output), cpu.max_window_depth,
    )


def timed_plain_run(asm, fast):
    program = assemble(asm)
    loaded = load_program(program, fast_path=fast)
    begin = time.perf_counter()
    code = loaded.run()
    elapsed = time.perf_counter() - begin
    if code != 0:
        raise SystemExit("workload exited %r" % code)
    return elapsed, loaded


def timed_armed_run(source, lang, watch_expr):
    debugger = Debugger.for_source(source, lang=lang, fast_path=True)
    watchpoint = debugger.watch(watch_expr, action="log")
    begin = time.perf_counter()
    reason = debugger.run()
    elapsed = time.perf_counter() - begin
    if reason != "exited":
        raise SystemExit("armed run did not exit: %r" % reason)
    return elapsed, debugger, watchpoint


def bench_workload(name, watch_expr, scale, repeats):
    workload = WORKLOADS[name]
    source = workload_source(name, scale)
    asm = compile_source(source, lang=workload.lang)

    # untimed warm-up (imports, codegen caches)
    timed_plain_run(asm, fast=True)

    # interleave plain/fast repeats (best-of) so machine-load drift
    # biases both engines equally
    plain_samples, fast_samples, armed_samples = [], [], []
    for _ in range(repeats):
        plain_s, plain = timed_plain_run(asm, fast=False)
        plain_samples.append(plain_s)
        fast_s, fast = timed_plain_run(asm, fast=True)
        fast_samples.append(fast_s)
        armed_s, debugger, watchpoint = timed_armed_run(
            source, workload.lang, watch_expr)
        armed_samples.append(armed_s)

    divergence = None
    if state_signature(fast) != state_signature(plain):
        slow_sig, fast_sig = state_signature(plain), state_signature(fast)
        divergence = [index for index, (a, b)
                      in enumerate(zip(slow_sig, fast_sig)) if a != b]

    stats = fast.cpu.fast_stats()
    instructions = plain.cpu.instructions
    armed_instr = debugger.cpu.instructions
    plain_s = min(plain_samples)
    fast_s = min(fast_samples)
    armed_s = min(armed_samples)
    plain_rate = instructions / plain_s
    fast_rate = instructions / fast_s
    armed_rate = armed_instr / armed_s
    return {
        "workload": name,
        "watch": watch_expr,
        "scale": scale,
        "instructions": instructions,
        "plain_run_s": round(plain_s, 4),
        "fast_run_s": round(fast_s, 4),
        "plain_instr_per_s": round(plain_rate),
        "fast_instr_per_s": round(fast_rate),
        "speedup": round(fast_rate / plain_rate, 2),
        "digest_match": divergence is None,
        "divergent_fields": divergence,
        "block_runs": stats["block_runs"],
        "fast_retired": stats["fast_retired"],
        "cached_blocks": stats["cached_blocks"],
        # armed = instrumented + data breakpoint: monitor traps pin
        # block boundaries, so this prices the selective de-opt
        "armed_instructions": armed_instr,
        "armed_run_s": round(armed_s, 4),
        "armed_instr_per_s": round(armed_rate),
        "armed_monitor_hits": watchpoint.hit_count(),
        "armed_overhead_vs_fast_pct":
            round((fast_rate - armed_rate) / fast_rate * 100.0, 1),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=2.0,
                        help="workload size multiplier (the default is "
                             "large enough that steady-state block reuse "
                             "dominates one-time compile cost)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per engine (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: small scale, one repeat, gate on "
                             "divergence and the speedup floor")
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here")
    args = parser.parse_args()
    scale = 0.4 if args.quick else args.scale
    repeats = 1 if args.quick else args.repeats

    rows = [bench_workload(name, watch_expr, scale, repeats)
            for name, watch_expr in TARGETS]
    report = {
        "benchmark": "repro.machine.fastpath",
        "speedup_floor": SPEEDUP_FLOOR,
        "gate_min_workloads": GATE_MIN_WORKLOADS,
        "workloads": rows,
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")

    divergent = [row["workload"] for row in rows if not row["digest_match"]]
    if divergent:
        print("FAIL: fast path diverged from the per-step loop on %s"
              % ", ".join(divergent))
        return 2
    if args.quick:
        above = [row["workload"] for row in rows
                 if row["speedup"] >= SPEEDUP_FLOOR]
        if len(above) < GATE_MIN_WORKLOADS:
            print("FAIL: only %d/%d workloads reached the %.1fx speedup "
                  "floor (need %d)" % (len(above), len(rows),
                                       SPEEDUP_FLOOR, GATE_MIN_WORKLOADS))
            return 1
        print("gate OK: %d/%d workloads >= %.1fx, all digests match"
              % (len(above), len(rows), SPEEDUP_FLOOR))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
