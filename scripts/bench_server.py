#!/usr/bin/env python
"""Debug-server throughput/latency benchmark.

Boots a :class:`repro.server.DebugServer` in-process, opens N
concurrent client connections (one session each), and hammers
``setDataBreakpoints`` — the request that exercises the full §4.2
PreMonitor + CreateMonitoredRegion transaction per call — measuring
requests/sec and per-request latency percentiles.  A short
``continue`` phase is measured too, since that is the quota-bounded
execution path.  A hibernate/thaw phase freezes each session to disk
and resumes it, measuring freeze and thaw latency percentiles plus the
frozen-file size — the cost model behind idle-session eviction.

Usage::

    PYTHONPATH=src python scripts/bench_server.py            # full run
    PYTHONPATH=src python scripts/bench_server.py --smoke    # CI-sized
    PYTHONPATH=src python scripts/bench_server.py -o BENCH_server.json
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import time

from repro.server import DebugClient, DebugServer, ServerConfig

SOURCE = """
int total;
int main() {
    register int i;
    total = 0;
    for (i = 0; i < 50; i = i + 1) {
        total = total + i;
    }
    print(total);
    return 0;
}
"""


def percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def drive(server, requests, latencies, errors, barrier):
    try:
        with DebugClient(port=server.port, timeout=60) as client:
            client.initialize()
            session_id = client.launch(SOURCE)
            info = client.data_breakpoint_info(session_id, "total")
            spec = [{"dataId": info["dataId"], "stop": False}]
            barrier.wait()
            for _ in range(requests):
                begin = time.perf_counter()
                client.set_data_breakpoints(session_id, spec)
                latencies.append(time.perf_counter() - begin)
            client.disconnect(session_id)
    except Exception as exc:  # pragma: no cover
        errors.append(repr(exc))


def bench_set_data_breakpoints(sessions, requests):
    config = ServerConfig(max_sessions=sessions + 2, workers=sessions)
    with DebugServer(config=config).start() as server:
        latencies: list = []
        errors: list = []
        barrier = threading.Barrier(sessions + 1, timeout=120)
        threads = [threading.Thread(target=drive,
                                    args=(server, requests, latencies,
                                          errors, barrier))
                   for _ in range(sessions)]
        for thread in threads:
            thread.start()
        barrier.wait()
        begin = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        if errors:
            raise SystemExit("bench workers failed: %s" % errors[:3])
        total = sessions * requests
        return {
            "sessions": sessions,
            "requests_per_session": requests,
            "total_requests": total,
            "elapsed_s": round(elapsed, 4),
            "requests_per_sec": round(total / elapsed, 1),
            "latency_ms": {
                "p50": round(percentile(latencies, 0.50) * 1e3, 3),
                "p90": round(percentile(latencies, 0.90) * 1e3, 3),
                "p99": round(percentile(latencies, 0.99) * 1e3, 3),
                "max": round(max(latencies) * 1e3, 3),
            },
        }


def bench_continue(sessions, quota):
    """Each session runs its program to completion under *quota*-sized
    continue requests; reports continues/sec."""
    config = ServerConfig(max_sessions=sessions + 2, workers=sessions,
                          quota_instructions=quota)
    with DebugServer(config=config).start() as server:
        counts: list = []
        errors: list = []
        lock = threading.Lock()

        def runner():
            try:
                with DebugClient(port=server.port, timeout=60) as client:
                    client.initialize()
                    session_id = client.launch(SOURCE)
                    continues = 0
                    stop = {"exited": False}
                    while not stop.get("exited"):
                        stop = client.cont(session_id)
                        continues += 1
                    with lock:
                        counts.append(continues)
            except Exception as exc:  # pragma: no cover
                errors.append(repr(exc))

        threads = [threading.Thread(target=runner)
                   for _ in range(sessions)]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        if errors:
            raise SystemExit("bench workers failed: %s" % errors[:3])
        total = sum(counts)
        return {"sessions": sessions, "quota_instructions": quota,
                "total_continues": total,
                "elapsed_s": round(elapsed, 4),
                "continues_per_sec": round(total / elapsed, 1)}


def bench_hibernate_thaw(sessions, cycles):
    """Each session is frozen to disk and thawed *cycles* times;
    reports per-operation latency percentiles and frozen-file size."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-hib-") as hdir:
        config = ServerConfig(max_sessions=sessions + 2,
                              workers=sessions, hibernate_dir=hdir)
        with DebugServer(config=config).start() as server:
            freeze_lat: list = []
            thaw_lat: list = []
            sizes: list = []
            errors: list = []
            lock = threading.Lock()

            def runner():
                try:
                    with DebugClient(port=server.port,
                                     timeout=60) as client:
                        client.initialize()
                        session_id = client.launch(SOURCE)
                        info = client.data_breakpoint_info(session_id,
                                                           "total")
                        client.set_data_breakpoints(
                            session_id,
                            [{"dataId": info["dataId"], "stop": False}])
                        client.cont(session_id, quota=200)
                        for _ in range(cycles):
                            begin = time.perf_counter()
                            body = client.hibernate(session_id)
                            froze = time.perf_counter()
                            client.resume(session_id)
                            thawed = time.perf_counter()
                            with lock:
                                freeze_lat.append(froze - begin)
                                thaw_lat.append(thawed - froze)
                                if body.get("frozenBytes"):
                                    sizes.append(body["frozenBytes"])
                        client.disconnect(session_id)
                except Exception as exc:  # pragma: no cover
                    errors.append(repr(exc))

            threads = [threading.Thread(target=runner)
                       for _ in range(sessions)]
            begin = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - begin
            if errors:
                raise SystemExit("bench workers failed: %s" % errors[:3])
            total = sessions * cycles
            return {
                "sessions": sessions,
                "cycles_per_session": cycles,
                "total_cycles": total,
                "elapsed_s": round(elapsed, 4),
                "freeze_ms": {
                    "p50": round(percentile(freeze_lat, 0.50) * 1e3, 3),
                    "p95": round(percentile(freeze_lat, 0.95) * 1e3, 3),
                    "max": round(max(freeze_lat) * 1e3, 3),
                },
                "thaw_ms": {
                    "p50": round(percentile(thaw_lat, 0.50) * 1e3, 3),
                    "p95": round(percentile(thaw_lat, 0.95) * 1e3, 3),
                    "max": round(max(thaw_lat) * 1e3, 3),
                },
                "frozen_bytes_per_session": {
                    "min": min(sizes) if sizes else 0,
                    "max": max(sizes) if sizes else 0,
                },
            }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--requests", type=int, default=50,
                        help="setDataBreakpoints calls per session")
    parser.add_argument("--quota", type=int, default=500,
                        help="instructions per continue request")
    parser.add_argument("--cycles", type=int, default=10,
                        help="hibernate/thaw cycles per session")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (2 sessions, 5 requests)")
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here")
    args = parser.parse_args()
    sessions = 2 if args.smoke else args.sessions
    requests = 5 if args.smoke else args.requests
    cycles = 3 if args.smoke else args.cycles

    report = {
        "benchmark": "repro.server",
        "setDataBreakpoints": bench_set_data_breakpoints(sessions,
                                                         requests),
        "continue": bench_continue(sessions, args.quota),
        "hibernateThaw": bench_hibernate_thaw(sessions, cycles),
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
