#!/usr/bin/env python
"""Per-kind watchpoint overhead benchmark.

Runs §6 workloads with one armed watchpoint per kind — unconditional,
conditional (a predicate rejecting >99% of hits), transition (the
same predicate on the ``rise`` edge) — and reports the wall-clock
overhead of each kind over a run with no watchpoint, plus the
conditional/unconditional ratio the acceptance gate watches (the
predicate engine's byte-range guard and compiled evaluators should
keep a rejecting predicate within 2x of a plain watchpoint).

Usage::

    PYTHONPATH=src python scripts/bench_watch.py            # full run
    PYTHONPATH=src python scripts/bench_watch.py --smoke    # CI-sized
    PYTHONPATH=src python scripts/bench_watch.py -o BENCH_watch.json
"""

from __future__ import annotations

import argparse
import json

from repro.eval.watchkinds import KINDS, TARGETS, measure_watchkinds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved best-of repeats per kind")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (scale 0.2, 2 repeats)")
    parser.add_argument("-o", "--output", default="BENCH_watch.json",
                        help="write the JSON report here")
    args = parser.parse_args()
    scale = 0.2 if args.smoke else args.scale
    repeats = 2 if args.smoke else args.repeats

    results = measure_watchkinds(scale, repeats)
    workloads = {}
    ratios = []
    for name, rows in results.items():
        cond = rows["Conditional"]
        uncond = rows["Unconditional"]
        rejection = (cond["suppressed"] / cond["hits"]
                     if cond["hits"] else 0.0)
        # overheads can be sub-millisecond noise on tiny runs; compare
        # full armed wall-times (1 + overhead/100) so the ratio is
        # stable and still bounds predicate-eval cost
        ratio = ((100.0 + cond["overhead"])
                 / (100.0 + uncond["overhead"]))
        ratios.append(ratio)
        workloads[name] = {
            "overhead_pct": {kind: round(rows[kind]["overhead"], 2)
                             for kind in KINDS},
            "conditional": {
                "hits": int(cond["hits"]),
                "evals": int(cond["evals"]),
                "suppressed": int(cond["suppressed"]),
                "fired": int(cond["fired"]),
                "rejection_rate": round(rejection, 4),
            },
            "conditional_vs_unconditional": round(ratio, 3),
        }
        if rejection <= 0.99:
            raise SystemExit(
                "%s: predicate rejected only %.1f%% of hits; the "
                "conditional row no longer isolates eval cost"
                % (name, 100.0 * rejection))
    worst = max(ratios)
    report = {
        "benchmark": "repro.watchpoints",
        "scale": scale,
        "repeats": repeats,
        "targets": ["%s:%s" % (name, expr) for name, expr in TARGETS],
        "workloads": workloads,
        "worst_conditional_vs_unconditional": round(worst, 3),
        "within_2x": worst < 2.0,
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    if worst >= 2.0:
        print("FAIL: conditional watchpoint costs %.2fx an "
              "unconditional one (gate: < 2x)" % worst)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
