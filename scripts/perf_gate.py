#!/usr/bin/env python
"""Consolidated perf gate: replay every BENCH_*.json through
``repro analyze regress --baseline``.

Each committed benchmark file records the throughput trajectory of one
subsystem.  This gate turns them into a single CI exit code instead of
ad-hoc per-job thresholds: for every baseline row that carries enough
data to reprice (``workload`` + ``instructions`` + a wall time), it

1. records a fresh run of that workload into a scratch trace store
   (``repro record --workload ... --store ...``), then
2. runs ``repro analyze regress --workload W --baseline BENCH_x.json``
   and inherits its exit-code gating (exit 1 when the candidate's
   instr/s falls more than ``--threshold`` percent below the baseline).

Files whose rows don't describe a repriceable run (server latencies,
elimination counts, dedup ratios) are reported as skipped — their
subsystem-specific gates live in their own bench scripts.

Usage::

    PYTHONPATH=src python scripts/perf_gate.py                # all BENCH_*.json
    PYTHONPATH=src python scripts/perf_gate.py BENCH_sim.json --threshold 50
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile


def gateable_rows(path):
    """Baseline rows `repro analyze regress --baseline` can reprice."""
    with open(path) as handle:
        bench = json.load(handle)
    workloads = bench.get("workloads")
    if not isinstance(workloads, list):
        return []
    rows = []
    for row in workloads:
        if not isinstance(row, dict):
            continue
        if row.get("workload") and row.get("instructions") and \
                (row.get("recorded_run_s") or row.get("plain_run_s")):
            rows.append(row)
    return rows


def run_cli(args, env):
    command = [sys.executable, "-m", "repro"] + args
    return subprocess.run(command, env=env).returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baselines", nargs="*",
                        help="BENCH_*.json files (default: glob the "
                             "repository root)")
    parser.add_argument("--threshold", type=float, default=75.0,
                        help="fail when candidate instr/s drops more "
                             "than this percent below the baseline "
                             "(generous by design: baselines are "
                             "recorded on faster machines than CI)")
    parser.add_argument("--db", default=None,
                        help="scratch trace store (default: a temp file)")
    args = parser.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baselines = args.baselines or sorted(
        glob.glob(os.path.join(root, "BENCH_*.json")))
    if not baselines:
        print("perf-gate: no BENCH_*.json baselines found")
        return 2

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", os.path.join(root, "src"))
    db = args.db or os.path.join(tempfile.mkdtemp(prefix="perf_gate_"),
                                 "store.sqlite")

    recorded = set()
    failures = []
    skipped = []
    for path in baselines:
        rows = gateable_rows(path)
        if not rows:
            skipped.append(os.path.basename(path))
            continue
        for row in rows:
            workload = row["workload"]
            scale = row.get("scale") or 1.0
            if (workload, scale) not in recorded:
                code = run_cli(["record", "--workload", workload,
                                "--scale", str(scale), "--seed", "0",
                                "--store", db], env)
                if code != 0:
                    print("perf-gate: recording %s failed (%d)"
                          % (workload, code))
                    return 2
                recorded.add((workload, scale))
            print("== %s :: %s (scale %s)"
                  % (os.path.basename(path), workload, scale))
            code = run_cli(["analyze", "--db", db, "regress",
                            "--workload", workload,
                            "--baseline", path,
                            "--threshold", str(args.threshold)], env)
            if code != 0:
                failures.append("%s:%s" % (os.path.basename(path),
                                           workload))
    if skipped:
        print("perf-gate: skipped (no repriceable rows): %s"
              % ", ".join(skipped))
    if failures:
        print("perf-gate: FAIL — regressions against %s"
              % ", ".join(failures))
        return 1
    print("perf-gate: OK — %d baseline row(s) repriced, no regressions"
          % len(recorded))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
