#!/usr/bin/env python
"""Persistent trace-store benchmark.

Records §6 workloads with a data breakpoint armed, ingests each
recording into a fresh :class:`repro.store.TraceStore` several times
under different seeds (identical deterministic machine state, distinct
run identities — the store's dedup showcase), and prices the store:

* **ingest throughput** — recordings and trace bytes per second
  through the transactional, content-addressed ingest path;
* **dedup ratio** — bytes the keyframe table would hold without
  content addressing over bytes it actually holds (the gate: must
  exceed 1.0, or dedup is broken);
* **query latency** — p50/p95 over repeated ``hot`` and
  ``provenance`` queries against the populated store.

Usage::

    PYTHONPATH=src python scripts/bench_store.py            # full run
    PYTHONPATH=src python scripts/bench_store.py --smoke    # CI-sized
    PYTHONPATH=src python scripts/bench_store.py -o BENCH_store.json
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

from repro.debugger import Debugger
from repro.store import TraceStore
from repro.workloads import WORKLOADS, workload_source

#: (workload name, watched expression) — same pairs as bench_replay
TARGETS = [
    ("023.eqntott", "__seed"),
    ("030.matrix300", "c[24]"),
]


def percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def record_workload(name, watch_expr, scale, stride):
    workload = WORKLOADS[name]
    debugger = Debugger.for_source(workload_source(name, scale),
                                   lang=workload.lang)
    debugger.watch(watch_expr, action="log")
    recorder = debugger.record(stride=stride)
    reason = debugger.run()
    while reason != "exited":
        reason = debugger.run()
    return debugger, recorder


def bench_workload(store, name, watch_expr, scale, stride, runs,
                   query_calls):
    debugger, recorder = record_workload(name, watch_expr, scale,
                                         stride)
    ingest_s = []
    trace_bytes = 0
    for seed in range(runs):
        recorder.set_meta(workload=name, scale=scale, seed=seed)
        export = recorder.export()
        trace_bytes = len(export.trace_bytes)
        begin = time.perf_counter()
        store.ingest(export)
        ingest_s.append(time.perf_counter() - begin)

    _entry, addr, size = debugger.resolve(watch_expr)
    hot_ms, provenance_ms = [], []
    for _ in range(query_calls):
        begin = time.perf_counter()
        store.hot(workload=name, top=10)
        hot_ms.append((time.perf_counter() - begin) * 1e3)
        begin = time.perf_counter()
        rows = store.provenance(addr, size, workload=name)
        provenance_ms.append((time.perf_counter() - begin) * 1e3)
    answered = sum(1 for row in rows if row["written"])

    total_ingest = sum(ingest_s)
    return {
        "workload": name,
        "watch": watch_expr,
        "scale": scale,
        "runs_ingested": runs,
        "trace_bytes": trace_bytes,
        "keyframes": len(recorder.keyframes),
        "ingest_per_s": round(runs / total_ingest, 1),
        "ingest_mb_per_s": round(
            runs * trace_bytes / total_ingest / 1e6, 2),
        "provenance_runs_answered": answered,
        "hot_ms": {
            "samples": len(hot_ms),
            "p50": round(percentile(hot_ms, 0.50), 3),
            "p95": round(percentile(hot_ms, 0.95), 3),
        },
        "provenance_ms": {
            "samples": len(provenance_ms),
            "p50": round(percentile(provenance_ms, 0.50), 3),
            "p95": round(percentile(provenance_ms, 0.95), 3),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier")
    parser.add_argument("--stride", type=int, default=2000,
                        help="instructions between keyframes")
    parser.add_argument("--runs", type=int, default=8,
                        help="seed-distinct ingests per workload")
    parser.add_argument("--query-calls", type=int, default=20)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (scale 0.3, few samples)")
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here")
    args = parser.parse_args()
    scale = 0.3 if args.smoke else args.scale
    runs = 3 if args.smoke else args.runs
    query_calls = 5 if args.smoke else args.query_calls

    handle, path = tempfile.mkstemp(suffix=".sqlite",
                                    prefix="bench_store_")
    os.close(handle)
    os.unlink(path)     # TraceStore creates it fresh
    try:
        with TraceStore(path) as store:
            workloads = [
                bench_workload(store, name, watch_expr, scale,
                               args.stride, runs, query_calls)
                for name, watch_expr in TARGETS]
            stats = store.stats()
    finally:
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(path + suffix)
            except OSError:
                pass

    report = {
        "benchmark": "repro.store",
        "workloads": workloads,
        "store": stats,
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    if stats["dedup_ratio"] <= 1.0:
        print("FAIL: dedup ratio %.3f is not > 1.0 — content "
              "addressing is broken" % stats["dedup_ratio"])
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
