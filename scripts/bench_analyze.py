#!/usr/bin/env python
"""Interprocedural write-check analysis benchmark.

Runs §6 workloads through the elimination pipeline under ``sym``,
``full`` and ``ipa`` and reports, per workload, the dynamic
elimination rate of each mode plus the wall-clock cost of building
the ``ipa`` plan (call graph + points-to + ranges + elimination).
The acceptance gate checks the ISSUE-8 claims: ``ipa`` never
eliminates fewer checks than ``full``, and eliminates strictly more
static sites on at least two workloads.

Usage::

    PYTHONPATH=src python scripts/bench_analyze.py            # full run
    PYTHONPATH=src python scripts/bench_analyze.py --smoke    # CI-sized
    PYTHONPATH=src python scripts/bench_analyze.py -o BENCH_analyze.json
"""

from __future__ import annotations

import argparse
import json
import time

from repro.eval.analyze import measure_workload
from repro.minic import compile_source
from repro.optimizer.pipeline import build_plan
from repro.workloads import WORKLOAD_ORDER, WORKLOADS, workload_source

#: smoke subset: the three "ipa wins" workloads plus the heap-heavy
#: refusal showcase
SMOKE_WORKLOADS = ["022.li", "015.doduc", "013.spice2g6", "001.gcc1.35"]


def time_ipa_build(name: str, scale: float) -> float:
    spec = WORKLOADS[name]
    asm = compile_source(workload_source(name, scale), lang=spec.lang)
    start = time.perf_counter()
    build_plan(asm, mode="ipa")
    return time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (scale 0.2, 4 workloads)")
    parser.add_argument("-o", "--output", default="BENCH_analyze.json",
                        help="write the JSON report here")
    args = parser.parse_args()
    scale = 0.2 if args.smoke else args.scale
    names = SMOKE_WORKLOADS if args.smoke else WORKLOAD_ORDER

    workloads = {}
    wins = []
    for name in names:
        row = measure_workload(name, scale)
        analysis_seconds = time_ipa_build(name, scale)
        if row["ipa"] + 1e-9 < row["full"]:
            raise SystemExit(
                "%s: ipa eliminated %.1f%% of dynamic checks but full "
                "managed %.1f%% — ipa must dominate"
                % (name, row["ipa"], row["full"]))
        if row["ipa_static"] > row["full_static"]:
            wins.append(name)
        workloads[name] = {
            "elimination_pct": {mode: round(row[mode], 2)
                                for mode in ("sym", "full", "ipa")},
            "static_sites": {mode: int(row[mode + "_static"])
                             for mode in ("sym", "full", "ipa")},
            "ipa_eliminated": int(row["ipa_sites"]),
            "ipa_guarded": int(row["ipa_guarded"]),
            "ipa_analysis_seconds": round(analysis_seconds, 4),
        }
    report = {
        "benchmark": "repro.analysis",
        "scale": scale,
        "workloads": workloads,
        "ipa_strict_wins": wins,
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    if len(wins) < 2:
        print("FAIL: ipa beat full on only %d workload(s) %s "
              "(gate: >= 2)" % (len(wins), wins))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
